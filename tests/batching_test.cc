/**
 * @file
 * Tests for the SIMR-aware batching server and the batch splitter.
 */

#include <gtest/gtest.h>

#include <map>

#include "batching/policy.h"
#include "batching/splitter.h"
#include "common/rng.h"

using namespace simr;
using namespace simr::batch;

namespace
{

std::vector<svc::Request>
makeRequests(int n, int apis, int max_arg, uint64_t seed)
{
    Rng rng(seed);
    std::vector<svc::Request> reqs;
    for (int i = 0; i < n; ++i) {
        svc::Request r;
        r.id = i;
        r.api = static_cast<int>(rng.below(static_cast<uint64_t>(apis)));
        r.argLen = 1 + static_cast<int>(
            rng.below(static_cast<uint64_t>(max_arg)));
        r.key = rng.next();
        reqs.push_back(r);
    }
    return reqs;
}

int
totalRequests(const std::vector<Batch> &bs)
{
    int n = 0;
    for (const auto &b : bs)
        n += b.size();
    return n;
}

} // namespace

TEST(Batching, PolicyNames)
{
    EXPECT_STREQ(policyName(Policy::Naive), "naive");
    EXPECT_STREQ(policyName(Policy::PerApi), "per-api");
    EXPECT_STREQ(policyName(Policy::PerApiArgSize), "per-api+arg");
}

class BatchingPolicyTest : public ::testing::TestWithParam<Policy>
{
};

TEST_P(BatchingPolicyTest, EveryRequestInExactlyOneBatch)
{
    auto reqs = makeRequests(500, 3, 8, 11);
    BatchingServer server(GetParam(), 32);
    auto batches = server.formBatches(reqs);
    EXPECT_EQ(totalRequests(batches), 500);

    std::map<int64_t, int> seen;
    for (const auto &b : batches)
        for (const auto &r : b.requests)
            ++seen[r.id];
    for (const auto &[id, count] : seen)
        EXPECT_EQ(count, 1) << "request " << id;
    EXPECT_EQ(seen.size(), 500u);
}

TEST_P(BatchingPolicyTest, BatchesNeverExceedSize)
{
    auto reqs = makeRequests(300, 4, 16, 13);
    BatchingServer server(GetParam(), 16);
    for (const auto &b : server.formBatches(reqs))
        EXPECT_LE(b.size(), 16);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, BatchingPolicyTest,
                         ::testing::Values(Policy::Naive, Policy::PerApi,
                                           Policy::PerApiArgSize));

TEST(Batching, NaivePreservesArrivalOrder)
{
    auto reqs = makeRequests(100, 3, 4, 17);
    BatchingServer server(Policy::Naive, 32);
    auto batches = server.formBatches(reqs);
    int64_t expect = 0;
    for (const auto &b : batches)
        for (const auto &r : b.requests)
            EXPECT_EQ(r.id, expect++);
}

TEST(Batching, PerApiBatchesAreApiPure)
{
    auto reqs = makeRequests(400, 4, 4, 19);
    BatchingServer server(Policy::PerApi, 32);
    for (const auto &b : server.formBatches(reqs)) {
        for (const auto &r : b.requests)
            EXPECT_EQ(r.api, b.requests[0].api);
    }
}

TEST(Batching, PerApiArgSortsWithinApi)
{
    auto reqs = makeRequests(600, 2, 32, 23);
    BatchingServer server(Policy::PerApiArgSize, 32);
    auto batches = server.formBatches(reqs);
    // Every batch is API-pure and argLen-monotonic.
    for (const auto &b : batches) {
        for (int i = 0; i + 1 < b.size(); ++i) {
            EXPECT_EQ(b.requests[static_cast<size_t>(i)].api,
                      b.requests[0].api);
            EXPECT_LE(b.requests[static_cast<size_t>(i)].argLen,
                      b.requests[static_cast<size_t>(i) + 1].argLen);
        }
    }
}

TEST(Batching, PerApiArgFillsBatchesDespiteRareSizes)
{
    // Heavy-tailed sizes: exact-size grouping would strand many
    // partial batches; windowed sorting should keep them mostly full.
    Rng rng(29);
    std::vector<svc::Request> reqs;
    for (int i = 0; i < 640; ++i) {
        svc::Request r;
        r.id = i;
        r.api = 0;
        r.argLen = 1 + static_cast<int>(rng.zipf(32, 1.2));
        reqs.push_back(r);
    }
    BatchingServer server(Policy::PerApiArgSize, 32);
    auto batches = server.formBatches(reqs);
    int full = 0;
    for (const auto &b : batches)
        full += b.size() == 32 ? 1 : 0;
    EXPECT_GE(full, static_cast<int>(batches.size()) - 2);
}

TEST(Batching, SingleRequest)
{
    std::vector<svc::Request> reqs(1);
    BatchingServer server(Policy::PerApiArgSize, 32);
    auto batches = server.formBatches(reqs);
    ASSERT_EQ(batches.size(), 1u);
    EXPECT_EQ(batches[0].size(), 1);
}

TEST(Batching, EmptyInput)
{
    BatchingServer server(Policy::Naive, 32);
    EXPECT_TRUE(server.formBatches({}).empty());
}

TEST(Splitter, PartitionsByPredicate)
{
    Batch b;
    for (int i = 0; i < 10; ++i) {
        svc::Request r;
        r.id = i;
        b.requests.push_back(r);
    }
    auto res = splitBatch(b, [](const svc::Request &r) {
        return r.id % 3 == 0;
    });
    EXPECT_EQ(res.blocked.size(), 4);
    EXPECT_EQ(res.fast.size(), 6);
    for (const auto &r : res.blocked.requests)
        EXPECT_EQ(r.id % 3, 0);
}

TEST(Splitter, NullPredicateBlocksNothing)
{
    Batch b;
    b.requests.resize(5);
    auto res = splitBatch(b, nullptr);
    EXPECT_EQ(res.fast.size(), 5);
    EXPECT_EQ(res.blocked.size(), 0);
}

TEST(Splitter, RebatchOrphansFormsFullBatches)
{
    std::vector<Batch> orphans;
    for (int i = 0; i < 10; ++i) {
        Batch b;
        b.requests.resize(5);
        for (int k = 0; k < 5; ++k)
            b.requests[static_cast<size_t>(k)].id = i * 5 + k;
        orphans.push_back(b);
    }
    auto rebatched = rebatchOrphans(orphans, 32);
    ASSERT_EQ(rebatched.size(), 2u);
    EXPECT_EQ(rebatched[0].size(), 32);
    EXPECT_EQ(rebatched[1].size(), 18);
}

TEST(Splitter, RebatchPreservesCount)
{
    std::vector<Batch> orphans(3);
    orphans[0].requests.resize(7);
    orphans[1].requests.resize(31);
    orphans[2].requests.resize(2);
    auto rebatched = rebatchOrphans(orphans, 8);
    EXPECT_EQ(totalRequests(rebatched), 40);
}
