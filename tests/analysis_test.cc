/**
 * @file
 * Tests for the static µISA analyzer and its dynamic cross-check:
 * all registered services analyze clean, adversarial programs are
 * rejected with the expected diagnostic codes, the lockstep engine's
 * observed reconvergence points match the computed IPDOMs, and injected
 * annotation corruption is caught statically, dynamically, and by the
 * runner's pre-simulation gate.
 */

#include <gtest/gtest.h>

#include <memory>

#include "analysis/analyzer.h"
#include "analysis/cfg.h"
#include "analysis/crosscheck.h"
#include "analysis/dom.h"
#include "isa/builder.h"
#include "mem/address_space.h"
#include "services/basic_service.h"
#include "services/service.h"
#include "simr/runner.h"
#include "simt/lockstep.h"

namespace simr
{
namespace
{

using analysis::Code;
using analysis::Report;
using analysis::Severity;
using isa::Cmp;
using isa::Op;
using mem::AddressSpace;

bool
hasCode(const Report &r, Code c, Severity sev)
{
    for (const auto &d : r.diags)
        if (d.code == c && d.sev == sev)
            return true;
    return false;
}

// ---------------------------------------------------------------------------
// Registered services: the production programs must analyze clean.
// ---------------------------------------------------------------------------

TEST(Analysis, AllRegisteredServicesAnalyzeClean)
{
    for (const auto &name : svc::serviceNames()) {
        auto svc = svc::buildService(name);
        ASSERT_NE(svc, nullptr) << name;
        Report r = analysis::analyze(svc->program());
        EXPECT_EQ(r.errors(), 0) << name << ":\n" << r.json();
        EXPECT_EQ(r.warnings(), 0) << name << ":\n" << r.json();
        // Every conditional branch's annotation matched its computed
        // immediate post-dominator (a mismatch would be an Error, but
        // check the verification records directly too).
        EXPECT_FALSE(r.branches.empty()) << name;
        for (const auto &b : r.branches)
            EXPECT_EQ(b.annotReconv, b.computedIpdom) << name;
    }
}

TEST(Analysis, ReportRendersJson)
{
    auto svc = svc::buildService("memc");
    Report r = analysis::analyze(svc->program());
    std::string j = r.json();
    EXPECT_NE(j.find("\"program\": \"memc\""), std::string::npos);
    EXPECT_NE(j.find("\"errors\": 0"), std::string::npos);
    EXPECT_NE(j.find("\"branches\": ["), std::string::npos);
}

// ---------------------------------------------------------------------------
// Adversarial programs: each lint fires with its documented code.
// ---------------------------------------------------------------------------

TEST(Analysis, FlagsUnreachableBlock)
{
    isa::Program p("bad-unreachable", AddressSpace::kCodeBase);
    int b0 = p.addBlock();
    int b1 = p.addBlock();
    isa::StaticInst ret;
    ret.op = Op::Ret;
    p.block(b0).insts.push_back(ret);
    isa::StaticInst jmp;
    jmp.op = Op::Jump;
    jmp.targetBlock = b1;  // self-loop, reachable from no entry
    p.block(b1).insts.push_back(jmp);
    p.addFunction("main", b0);
    p.layout();

    Report r = analysis::analyze(p);
    EXPECT_TRUE(hasCode(r, Code::UnreachableBlock, Severity::Error))
        << r.json();
}

TEST(Analysis, FlagsWrongReconvergenceAnnotation)
{
    // Diamond with the join at b3, deliberately annotated b4.
    isa::Program p("bad-reconv", AddressSpace::kCodeBase);
    int b0 = p.addBlock();
    int b1 = p.addBlock();
    int b2 = p.addBlock();
    int b3 = p.addBlock();
    int b4 = p.addBlock();

    isa::StaticInst br;
    br.op = Op::Branch;
    br.cmp = Cmp::Eq;
    br.targetBlock = b1;
    br.reconvBlock = b4;  // wrong: the immediate post-dominator is b3
    p.block(b0).insts.push_back(br);
    p.block(b0).fallthrough = b2;

    isa::StaticInst jmp;
    jmp.op = Op::Jump;
    jmp.targetBlock = b3;
    p.block(b1).insts.push_back(jmp);

    isa::StaticInst nop;
    nop.op = Op::Nop;
    p.block(b2).insts.push_back(nop);
    p.block(b2).fallthrough = b3;

    p.block(b3).insts.push_back(nop);
    p.block(b3).fallthrough = b4;

    isa::StaticInst ret;
    ret.op = Op::Ret;
    p.block(b4).insts.push_back(ret);

    p.addFunction("main", b0);
    p.layout();

    Report r = analysis::analyze(p);
    EXPECT_TRUE(hasCode(r, Code::ReconvMismatch, Severity::Error))
        << r.json();
    ASSERT_EQ(r.branches.size(), 1u);
    EXPECT_EQ(r.branches[0].annotReconv, b4);
    EXPECT_EQ(r.branches[0].computedIpdom, b3);
}

TEST(Analysis, FlagsCallDepthImbalance)
{
    // main jumps straight into helper's body: helper's Ret executes at
    // main's depth, i.e. unbalanced Call/Ret.
    isa::Program p("bad-calldepth", AddressSpace::kCodeBase);
    int b0 = p.addBlock();
    int b1 = p.addBlock();
    int b2 = p.addBlock();

    isa::StaticInst jmp;
    jmp.op = Op::Jump;
    jmp.targetBlock = b1;
    p.block(b0).insts.push_back(jmp);

    isa::StaticInst nop;
    nop.op = Op::Nop;
    p.block(b1).insts.push_back(nop);
    p.block(b1).fallthrough = b2;

    isa::StaticInst ret;
    ret.op = Op::Ret;
    p.block(b2).insts.push_back(ret);

    p.addFunction("main", b0);
    p.addFunction("helper", b1);
    p.layout();

    Report r = analysis::analyze(p);
    EXPECT_TRUE(hasCode(r, Code::SharedBlock, Severity::Error))
        << r.json();
}

TEST(Analysis, FlagsUnpairedLock)
{
    // An acquire-style fence with no matching release (fence followed
    // by a zero-store).
    isa::ProgramBuilder b("bad-lock", AddressSpace::kCodeBase);
    b.beginFunction("main");
    b.fence();
    b.endFunction();
    isa::Program p = b.finish();

    Report r = analysis::analyze(p);
    EXPECT_TRUE(hasCode(r, Code::LockPairing, Severity::Error))
        << r.json();
}

TEST(Analysis, FlagsStoreIntoUnmappedSegment)
{
    isa::ProgramBuilder b("bad-segment", AddressSpace::kCodeBase);
    b.beginFunction("main");
    b.store(isa::R_T0, isa::R_ZERO, 0x100);  // below every segment
    b.endFunction();
    isa::Program p = b.finish();

    Report r = analysis::analyze(p);
    EXPECT_TRUE(hasCode(r, Code::SegmentViolation, Severity::Error))
        << r.json();
}

TEST(Analysis, FlagsStackEscape)
{
    isa::ProgramBuilder b("bad-stack", AddressSpace::kCodeBase);
    b.beginFunction("main");
    // Far below this thread's 64KB stack segment.
    b.store(isa::R_T0, isa::R_SP,
            -static_cast<int64_t>(AddressSpace::kStackSize) - 4096);
    b.endFunction();
    isa::Program p = b.finish();

    Report r = analysis::analyze(p);
    EXPECT_TRUE(hasCode(r, Code::SegmentViolation, Severity::Error))
        << r.json();
}

TEST(Analysis, FlagsMissingMain)
{
    isa::ProgramBuilder b("bad-nomain", AddressSpace::kCodeBase);
    b.beginFunction("helper");
    b.nop(1);
    b.endFunction();
    isa::Program p = b.finish();

    Report r = analysis::analyze(p);
    EXPECT_TRUE(hasCode(r, Code::MissingMain, Severity::Error))
        << r.json();
}

TEST(Analysis, WarnsOnRecursion)
{
    isa::ProgramBuilder b("warn-recursion", AddressSpace::kCodeBase);
    b.beginFunction("loop_fn");
    b.callFn("loop_fn");
    b.endFunction();
    b.beginFunction("main");
    b.callFn("loop_fn");
    b.endFunction();
    isa::Program p = b.finish();

    Report r = analysis::analyze(p);
    EXPECT_TRUE(hasCode(r, Code::Recursion, Severity::Warning))
        << r.json();
}

// ---------------------------------------------------------------------------
// Program::validate() now rejects malformed programs at layout time.
// ---------------------------------------------------------------------------

TEST(AnalysisDeath, LayoutRejectsBadAccessSize)
{
    isa::Program p("bad-size", AddressSpace::kCodeBase);
    int b0 = p.addBlock();
    isa::StaticInst ld;
    ld.op = Op::Load;
    ld.src1 = isa::R_SP;
    ld.accessSize = 3;  // not a power of two
    p.block(b0).insts.push_back(ld);
    isa::StaticInst ret;
    ret.op = Op::Ret;
    p.block(b0).insts.push_back(ret);
    p.addFunction("main", b0);
    EXPECT_DEATH(p.layout(), "power of two");
}

TEST(AnalysisDeath, LayoutRejectsDanglingFallthrough)
{
    isa::Program p("bad-dangling", AddressSpace::kCodeBase);
    int b0 = p.addBlock();
    isa::StaticInst nop;
    nop.op = Op::Nop;
    p.block(b0).insts.push_back(nop);  // no terminator, no fallthrough
    p.addFunction("main", b0);
    EXPECT_DEATH(p.layout(), "no terminator and no fallthrough");
}

// ---------------------------------------------------------------------------
// Dynamic cross-check: the engine's observed reconvergence points match
// the static IPDOMs for real services.
// ---------------------------------------------------------------------------

void
runCrossCheckOn(const std::string &name)
{
    auto svc = svc::buildService(name);
    ASSERT_NE(svc, nullptr);
    Report report = analysis::analyze(svc->program());
    ASSERT_TRUE(report.ok()) << report.json();

    auto reqs = genRequests(*svc, 256, 7);
    batch::BatchingServer server(batch::Policy::PerApiArgSize,
                                 trace::kMaxBatch);
    simt::LockstepEngine engine(
        svc->program(), simt::ReconvPolicy::StackIpdom, trace::kMaxBatch,
        makeBatchProvider(*svc, server.formBatches(reqs)));
    analysis::CheckedStream checked(engine, report);
    trace::DynOp op;
    while (checked.next(op)) {
    }

    const auto &cs = checked.stats();
    EXPECT_TRUE(cs.ok()) << name << ": " <<
        (cs.failures.empty() ? "" : cs.failures.front());
    EXPECT_GT(cs.divergences, 0u) << name;
    EXPECT_GT(cs.mergesChecked, 0u) << name;
    EXPECT_GT(engine.stats().reconvMerges, 0u) << name;
}

TEST(CrossCheck, MemcachedMatchesStaticIpdoms)
{
    runCrossCheckOn("memc");
}

TEST(CrossCheck, SearchLeafMatchesStaticIpdoms)
{
    runCrossCheckOn("search-leaf");
}

TEST(CrossCheck, PostMatchesStaticIpdoms)
{
    runCrossCheckOn("post");
}

// ---------------------------------------------------------------------------
// Injected annotation corruption: caught by the static pass, by the
// dynamic cross-check, and by the runner's pre-simulation gate.
// ---------------------------------------------------------------------------

/** First block whose terminator is a conditional branch. */
int
firstBranchBlock(const isa::Program &p)
{
    for (int b = 0; b < p.numBlocks(); ++b) {
        const auto &bb = p.block(b);
        if (!bb.insts.empty() && bb.insts.back().op == Op::Branch)
            return b;
    }
    return -1;
}

TEST(Corruption, StaticPassCatchesCorruptAnnotation)
{
    auto svc = svc::buildService("memc");
    isa::Program prog = svc->program();  // mutable copy
    int bb = firstBranchBlock(prog);
    ASSERT_GE(bb, 0);
    isa::StaticInst &br = prog.block(bb).insts.back();
    br.reconvBlock = (br.reconvBlock + 1) % prog.numBlocks();

    Report r = analysis::analyze(prog);
    EXPECT_TRUE(hasCode(r, Code::ReconvMismatch, Severity::Error))
        << r.json();
}

TEST(Corruption, DynamicCrossCheckCatchesCorruptAnnotation)
{
    // Two stacked trivial diamonds. Corrupting the first branch's
    // annotation to the *second* join is still a post-dominator, so the
    // stack engine completes -- but lanes observably merge at the wrong
    // PC, which the cross-check (driven by the clean static report)
    // must flag.
    isa::ProgramBuilder b("corrupt-dyn", AddressSpace::kCodeBase);
    b.beginFunction("main");
    b.alu(isa::AluKind::AndImm, isa::R_T1, isa::R_KEY, isa::R_ZERO, 1);
    b.ifElseImm(isa::R_T1, Cmp::Eq, 0,
                [&] { b.addImm(isa::R_T2, isa::R_T2, 1); },
                [&] { b.addImm(isa::R_T2, isa::R_T2, 2); });
    b.nop(2);  // first join body
    b.ifElseImm(isa::R_ZERO, Cmp::Eq, 0,  // uniform: never diverges
                [&] { b.nop(1); },
                [&] { b.nop(1); });
    b.nop(2);  // second join body
    b.endFunction();
    isa::Program prog = b.finish();

    Report clean = analysis::analyze(prog);
    ASSERT_TRUE(clean.ok()) << clean.json();

    int b1 = firstBranchBlock(prog);
    ASSERT_GE(b1, 0);
    isa::StaticInst &br1 = prog.block(b1).insts.back();
    int join2 = -1;
    for (int bb = b1 + 1; bb < prog.numBlocks(); ++bb) {
        const auto &blk = prog.block(bb);
        if (!blk.insts.empty() && blk.insts.back().op == Op::Branch) {
            join2 = blk.insts.back().reconvBlock;
            break;
        }
    }
    ASSERT_GE(join2, 0);
    ASSERT_NE(join2, br1.reconvBlock);
    br1.reconvBlock = join2;

    // One batch of 8 threads with alternating key parity so the first
    // branch genuinely diverges.
    bool launched = false;
    simt::LockstepEngine engine(
        prog, simt::ReconvPolicy::StackIpdom, 8,
        [&launched](std::vector<trace::ThreadInit> &inits) -> int {
            if (launched)
                return 0;
            launched = true;
            inits.clear();
            for (int i = 0; i < 8; ++i) {
                trace::ThreadInit ti;
                ti.key = static_cast<uint64_t>(i);
                ti.reqId = i;
                ti.tid = i;
                ti.sharedBase = AddressSpace::kSharedHeapBase;
                ti.stackTop = AddressSpace::stackTop(
                    static_cast<uint64_t>(i));
                ti.heapBase = AddressSpace::kPrivateHeapBase +
                    static_cast<uint64_t>(i) * AddressSpace::kArenaStride;
                inits.push_back(ti);
            }
            return 8;
        });
    analysis::CheckedStream checked(engine, clean);
    trace::DynOp op;
    while (checked.next(op)) {
    }

    const auto &cs = checked.stats();
    EXPECT_GT(cs.divergences, 0u);
    ASSERT_FALSE(cs.failures.empty());
    EXPECT_NE(cs.failures.front().find("static IPDOM predicts"),
              std::string::npos) << cs.failures.front();
}

TEST(CorruptionDeath, RunnerGateRefusesCorruptProgram)
{
    auto orig = std::shared_ptr<svc::Service>(svc::buildService("memc"));
    ASSERT_NE(orig, nullptr);
    isa::Program prog = orig->program();
    int bb = firstBranchBlock(prog);
    ASSERT_GE(bb, 0);
    isa::StaticInst &br = prog.block(bb).insts.back();
    br.reconvBlock = (br.reconvBlock + 1) % prog.numBlocks();

    svc::BasicService bad(
        orig->traits(), std::move(prog),
        [orig](int64_t id, Rng &rng) { return orig->genRequest(id, rng); });

    EXPECT_EXIT(
        measureEfficiency(bad, batch::Policy::PerApiArgSize,
                          simt::ReconvPolicy::StackIpdom, 8, 16, 1),
        ::testing::ExitedWithCode(1), "refusing to simulate");
}

// ---------------------------------------------------------------------------
// CFG / dominator internals.
// ---------------------------------------------------------------------------

TEST(Analysis, CfgAssignsFunctionsAndCallGraph)
{
    auto svc = svc::buildService("memc");
    analysis::Cfg cfg(svc->program());
    ASSERT_EQ(cfg.numFuncs(), svc->program().numFunctions());
    int main_fn = svc->program().findFunction("main");
    ASSERT_GE(main_fn, 0);
    // memc's main dispatches to get_fn and set_fn.
    EXPECT_EQ(cfg.callees(main_fn).size(), 2u);
    // Every block belongs to exactly one function.
    for (int b = 0; b < svc->program().numBlocks(); ++b) {
        EXPECT_GE(cfg.funcOf(b), 0) << "block " << b;
        EXPECT_FALSE(cfg.isShared(b)) << "block " << b;
    }
}

TEST(Analysis, DominatorsOnDiamond)
{
    isa::ProgramBuilder b("diamond", AddressSpace::kCodeBase);
    b.beginFunction("main");
    b.ifElseImm(isa::R_KEY, Cmp::Eq, 0,
                [&] { b.nop(1); }, [&] { b.nop(1); });
    b.nop(1);
    b.endFunction();
    isa::Program p = b.finish();

    analysis::Cfg cfg(p);
    const auto &fc = cfg.func(0);
    auto dom = analysis::DomTree::dominators(cfg, fc);
    auto pdom = analysis::DomTree::postDominators(cfg, fc);

    Report r = analysis::analyze(p);
    ASSERT_EQ(r.branches.size(), 1u);
    int branch_blk = r.branches[0].block;
    int join = r.branches[0].computedIpdom;
    ASSERT_GE(join, 0);
    // The branch block dominates the join; the join post-dominates the
    // branch block and neither arm dominates it.
    EXPECT_TRUE(dom.dominates(branch_blk, join));
    EXPECT_EQ(pdom.idom(branch_blk), join);
    for (int s : cfg.succs(branch_blk)) {
        if (s != join) {
            EXPECT_FALSE(dom.dominates(s, join));
        }
    }
}

} // namespace
} // namespace simr
