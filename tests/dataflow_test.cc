/**
 * @file
 * Tests for the static dataflow framework: the generic worklist solver
 * (forward and backward), the three client analyses on adversarial
 * builder programs (identity-dependent branch, frame-escaping pointer,
 * scattered gather, control-dependent loop bound), the StaticProof
 * packaging, the fingerprint-keyed analysis cache, the capture fast
 * path's bit-identity, and the deterministic (func, pc)-sorted JSON
 * rendering the CLI golden output relies on.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/cache.h"
#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "isa/builder.h"
#include "mem/allocator.h"
#include "services/service.h"
#include "simr/runner.h"
#include "trace/capture.h"
#include "trace/interp.h"

namespace simr
{
namespace
{

using analysis::DataflowInfo;
using analysis::Direction;
using analysis::FlowGraph;
using analysis::MemClass;
using analysis::Report;
using analysis::Uniformity;
using isa::AluKind;
using isa::Cmp;
using isa::Op;

// ---------------------------------------------------------------------------
// Generic solver: a tiny path-accumulation lattice over a diamond.
// States are bitmasks; bit 0 is the boundary token and bit (n + 1)
// records that node n's transfer ran on some path reaching the state.
// ---------------------------------------------------------------------------

struct MaskLattice
{
    using State = uint32_t;
    State bottom() const { return 0; }
    State boundary(int) const { return 1; }
    bool join(State &into, const State &from)
    {
        State n = into | from;
        if (n == into)
            return false;
        into = n;
        return true;
    }
    State transfer(int node, const State &in)
    {
        return in | (1u << (node + 1));
    }
};

FlowGraph
diamondGraph()
{
    // 0 -> {1, 2} -> 3
    FlowGraph g;
    g.numNodes = 4;
    g.succs = {{1, 2}, {3}, {3}, {}};
    g.preds = {{}, {0}, {0}, {1, 2}};
    return g;
}

TEST(DataflowSolver, ForwardJoinsOverPredecessors)
{
    FlowGraph g = diamondGraph();
    g.entries = {0};
    MaskLattice lat;
    auto in = analysis::solveDataflow(g, lat, Direction::Forward);
    EXPECT_EQ(in[0], 0b0001u);                // boundary only
    EXPECT_EQ(in[1], 0b0011u);                // through node 0
    EXPECT_EQ(in[2], 0b0011u);
    EXPECT_EQ(in[3], 0b1111u);                // both arms joined
}

TEST(DataflowSolver, BackwardJoinsOverSuccessors)
{
    // The same diamond solved backward from the exit: the "meet-in"
    // state of a node is now what holds on exit, flowing to preds.
    FlowGraph g = diamondGraph();
    g.entries = {3};
    MaskLattice lat;
    auto in = analysis::solveDataflow(g, lat, Direction::Backward);
    EXPECT_EQ(in[3], 0b00001u);
    EXPECT_EQ(in[1], 0b10001u);               // through node 3
    EXPECT_EQ(in[2], 0b10001u);
    EXPECT_EQ(in[0], 0b11101u);               // both arms joined
}

TEST(DataflowSolver, UnreachableNodeStaysBottom)
{
    FlowGraph g;
    g.numNodes = 3;
    g.succs = {{1}, {}, {1}};                 // 2 reaches 1, nothing reaches 2
    g.preds = {{}, {0, 2}, {}};
    g.entries = {0};
    MaskLattice lat;
    auto in = analysis::solveDataflow(g, lat, Direction::Forward);
    EXPECT_EQ(in[2], 0u);
    EXPECT_EQ(in[1], 0b011u);                 // only node 0 contributed
}

// ---------------------------------------------------------------------------
// Client analyses on adversarial builder programs.
// ---------------------------------------------------------------------------

Report
analyzeBuilt(isa::ProgramBuilder &b)
{
    isa::Program p = b.finish();
    Report r = analysis::analyze(p);
    EXPECT_TRUE(r.ok()) << r.json();
    EXPECT_TRUE(r.dataflow.ran);
    return r;
}

TEST(DataflowClients, IdentityDependentBranchIsTierThreeMayDiverge)
{
    isa::ProgramBuilder b("adv-id-branch");
    b.beginFunction("main");
    b.ifImm(isa::R_REQID, Cmp::Eq, 0, [&] { b.nop(); });
    b.ret();
    b.endFunction();
    Report r = analyzeBuilt(b);

    const DataflowInfo &df = r.dataflow;
    EXPECT_EQ(df.tierBound, 3);
    EXPECT_TRUE(df.mayIdDep);
    EXPECT_FALSE(df.allUniformPerBatch);
    ASSERT_EQ(df.branches.size(), 1u);
    EXPECT_EQ(df.branches[0].uniformity, Uniformity::MayDiverge);
    EXPECT_TRUE(df.branches[0].mayId);
}

TEST(DataflowClients, FrameEscapingPointerIsTierTwoScattered)
{
    // Hashing the stack pointer destroys the linear-coefficient
    // tracking: the address depends nonlinearly on frame placement, so
    // no relocation kind exists and the access is scattered.
    isa::ProgramBuilder b("adv-frame-escape");
    b.beginFunction("main");
    b.hash(isa::R_T0, isa::R_SP);
    b.load(isa::R_T1, isa::R_T0);
    b.ret();
    b.endFunction();
    Report r = analyzeBuilt(b);

    const DataflowInfo &df = r.dataflow;
    EXPECT_EQ(df.tierBound, 2);
    EXPECT_FALSE(df.mayIdDep);
    EXPECT_TRUE(df.mayFrameDep);
    ASSERT_EQ(df.mems.size(), 1u);
    EXPECT_EQ(df.mems[0].cls, MemClass::Scattered);
    EXPECT_EQ(df.mems[0].addrKind, -1);       // no exact kind exists
    EXPECT_TRUE(df.mems[0].mayFrame);
}

TEST(DataflowClients, ScatteredGatherStaysTierOne)
{
    // A key-indexed gather off the private heap: per-lane addressing
    // (scattered within a batch) but still exactly heap-relative on
    // every path, so the taint tier bound stays 1 and the capture fast
    // path remains admissible.
    isa::ProgramBuilder b("adv-gather");
    b.beginFunction("main");
    b.alu(AluKind::AndImm, isa::R_T0, isa::R_KEY, isa::R_ZERO, 0xff8);
    b.alu(AluKind::Add, isa::R_T1, isa::R_HEAP, isa::R_T0);
    b.load(isa::R_T2, isa::R_T1);
    b.ret();
    b.endFunction();
    Report r = analyzeBuilt(b);

    const DataflowInfo &df = r.dataflow;
    EXPECT_EQ(df.tierBound, 1);
    EXPECT_FALSE(df.mayIdDep);
    EXPECT_FALSE(df.mayFrameDep);
    ASSERT_EQ(df.mems.size(), 1u);
    EXPECT_EQ(df.mems[0].cls, MemClass::Scattered);
    EXPECT_EQ(df.mems[0].addrKind, 2);        // trace::AddrKind::HeapRel
    EXPECT_FALSE(df.mems[0].mayId);
    EXPECT_FALSE(df.mems[0].mayFrame);
}

TEST(DataflowClients, UniformSharedLoadAndImmLoopAreUniform)
{
    // The clean case: an absolute shared-segment load and a loop with
    // an immediate bound are uniform under any batch mix.
    isa::ProgramBuilder b("adv-clean");
    b.beginFunction("main");
    b.movImm(isa::R_T0, 0x20000000);
    b.forLoopImm(isa::R_T1, isa::R_T2, 4, [&] {
        b.load(isa::R_T3, isa::R_T0);
    });
    b.ret();
    b.endFunction();
    Report r = analyzeBuilt(b);

    const DataflowInfo &df = r.dataflow;
    EXPECT_EQ(df.tierBound, 1);
    EXPECT_TRUE(df.allUniformPerBatch);
    ASSERT_EQ(df.branches.size(), 1u);
    EXPECT_EQ(df.branches[0].uniformity, Uniformity::UniformAlways);
    ASSERT_EQ(df.mems.size(), 1u);
    EXPECT_EQ(df.mems[0].cls, MemClass::Uniform);
    EXPECT_EQ(df.mems[0].addrKind, 0);        // trace::AddrKind::Invariant
}

TEST(DataflowClients, ArgLenBranchIsUniformPerBatchOnly)
{
    isa::ProgramBuilder b("adv-arglen");
    b.beginFunction("main");
    b.ifImm(isa::R_ARGLEN, Cmp::Lt, 8, [&] { b.nop(); });
    b.ret();
    b.endFunction();
    Report r = analyzeBuilt(b);

    const DataflowInfo &df = r.dataflow;
    EXPECT_EQ(df.tierBound, 1);               // argLen is not identity/frame
    EXPECT_TRUE(df.allUniformPerBatch);
    ASSERT_EQ(df.branches.size(), 1u);
    EXPECT_EQ(df.branches[0].uniformity, Uniformity::UniformPerBatch);
}

TEST(DataflowClients, LoadedValueFromVaryingAddressIsLaneVarying)
{
    // Regression for the loaded-value soundness hole: the interpreter
    // has no mutable memory (a load returns mix64(addr ^ dataSeed)), so
    // a lane-varying *address* makes the loaded *value* lane-varying
    // even though the address is exactly absolute. A branch on that
    // value must be may-diverge — while the taint tier stays 1.
    isa::ProgramBuilder b("adv-loaded-value");
    b.beginFunction("main");
    b.alu(AluKind::AndImm, isa::R_T0, isa::R_KEY, isa::R_ZERO, 0xff8);
    b.alu(AluKind::Add, isa::R_T1, isa::R_SHARED, isa::R_T0);
    b.load(isa::R_T2, isa::R_T1);
    b.ifImm(isa::R_T2, Cmp::Lt, 5, [&] { b.nop(); });
    b.ret();
    b.endFunction();
    Report r = analyzeBuilt(b);

    const DataflowInfo &df = r.dataflow;
    EXPECT_EQ(df.tierBound, 1);
    ASSERT_EQ(df.branches.size(), 1u);
    EXPECT_EQ(df.branches[0].uniformity, Uniformity::MayDiverge);
    EXPECT_FALSE(df.branches[0].mayId);
    EXPECT_FALSE(df.branches[0].mayFrame);
}

TEST(DataflowClients, ControlDependentLoopBoundMayDiverge)
{
    // Regression for the control-dependence soundness hole: both arms
    // of a key-dependent if write a *constant* loop bound, but which
    // arm ran varies per lane, so the loop-header branch must still be
    // may-diverge after reconvergence.
    isa::ProgramBuilder b("adv-ctl-dep");
    b.beginFunction("main");
    b.hash(isa::R_T0, isa::R_KEY);
    b.alu(AluKind::ModImm, isa::R_T1, isa::R_T0, isa::R_ZERO, 16);
    b.ifElseImm(isa::R_T1, Cmp::Lt, 8,
                [&] { b.movImm(isa::R_T2, 2); },
                [&] { b.movImm(isa::R_T2, 1); });
    b.forLoop(isa::R_T3, isa::R_T2, [&] { b.nop(); });
    b.ret();
    b.endFunction();
    Report r = analyzeBuilt(b);

    const DataflowInfo &df = r.dataflow;
    EXPECT_EQ(df.tierBound, 1);               // key is neither id nor frame
    EXPECT_FALSE(df.allUniformPerBatch);
    ASSERT_EQ(df.branches.size(), 2u);
    for (const auto &bf : df.branches)
        EXPECT_EQ(bf.uniformity, Uniformity::MayDiverge)
            << "branch at pc 0x" << std::hex << bf.pc;
}

// ---------------------------------------------------------------------------
// StaticProof packaging and per-service invariants.
// ---------------------------------------------------------------------------

TEST(DataflowProof, TablesMirrorDataflowInfoForAllServices)
{
    for (const auto &name : svc::serviceNames()) {
        auto svc = svc::buildService(name);
        auto ca = analysis::analyzeAndProve(svc->program());
        ASSERT_TRUE(ca->report.ok()) << name;
        ASSERT_NE(ca->proof, nullptr) << name;
        const DataflowInfo &df = ca->report.dataflow;
        const trace::StaticProof &proof = *ca->proof;

        EXPECT_EQ(proof.taintTierBound, df.tierBound) << name;
        EXPECT_EQ(proof.fingerprint,
                  trace::ProgramIndex(svc->program()).fingerprint())
            << name;
        EXPECT_EQ(proof.memKind.size(),
                  svc->program().staticInstCount()) << name;
        for (const auto &m : df.mems)
            EXPECT_EQ(proof.memKind[m.flat],
                      m.addrKind >= 0 ? static_cast<uint8_t>(m.addrKind)
                                      : uint8_t{0})
                << name;
        for (const auto &bf : df.branches)
            EXPECT_EQ(proof.branchHint[bf.flat],
                      static_cast<uint8_t>(bf.uniformity)) << name;
        // Tier-1 programs must have an exact kind for every memory op
        // (that's what lets capture read kinds from the table).
        if (proof.tier1()) {
            for (const auto &m : df.mems)
                EXPECT_GE(m.addrKind, 0) << name;
        }
    }
}

TEST(DataflowProof, McrouterIsStaticallyTierOne)
{
    auto svc = svc::buildService("mcrouter");
    auto ca = analysis::analyzeAndProve(svc->program());
    ASSERT_NE(ca->proof, nullptr);
    EXPECT_TRUE(ca->proof->tier1());
    EXPECT_FALSE(ca->report.dataflow.mayIdDep);
    EXPECT_FALSE(ca->report.dataflow.mayFrameDep);
}

// ---------------------------------------------------------------------------
// Capture fast path: proof-driven capture is bit-identical to the
// dynamic taint walk.
// ---------------------------------------------------------------------------

TEST(DataflowCapture, StaticFastPathCaptureBitIdentical)
{
    auto svc = svc::buildService("mcrouter");
    auto ca = analysis::analyzeAndProve(svc->program());
    ASSERT_TRUE(ca->proof != nullptr && ca->proof->tier1());

    trace::ProgramIndex pi(svc->program());
    mem::HeapAllocator alloc(mem::AllocPolicy::SimrAware);
    auto reqs = genRequests(*svc, 8, 23);

    trace::CaptureBuilder dyn(pi);
    trace::CaptureBuilder fast(pi);
    fast.setStaticProof(ca->proof);

    for (size_t i = 0; i < reqs.size(); ++i) {
        auto init = svc::makeThreadInit(*svc, reqs[i], 0, i, alloc);
        trace::ThreadState ts(svc->program());
        dyn.reset(init);
        fast.reset(init);
        EXPECT_FALSE(dyn.staticFastPath());
        EXPECT_TRUE(fast.staticFastPath());
        ts.reset(init);
        trace::StepResult r;
        while (!ts.done()) {
            ts.step(r);
            dyn.onStep(r);
            fast.onStep(r);
        }
        auto a = dyn.finish();
        auto b = fast.finish();
        EXPECT_EQ(a->opCount(), b->opCount());
        EXPECT_EQ(a->identityDependent(), b->identityDependent());
        EXPECT_EQ(a->frameDependent(), b->frameDependent());
        EXPECT_EQ(a->staticIdx(), b->staticIdx());
        EXPECT_EQ(a->flags(), b->flags());
        EXPECT_EQ(a->addrArena(), b->addrArena());
        EXPECT_EQ(a->memAddr(), b->memAddr());
        EXPECT_EQ(a->dep1(), b->dep1());
        EXPECT_EQ(a->dep2(), b->dep2());
        EXPECT_EQ(a->callDepth(), b->callDepth());
    }
}

// ---------------------------------------------------------------------------
// Analysis cache: fingerprint-keyed sharing.
// ---------------------------------------------------------------------------

TEST(DataflowCache, GateAndProveSharesByFingerprint)
{
    analysis::AnalysisCache *cache = analysis::AnalysisCache::process();
    if (cache == nullptr)
        GTEST_SKIP() << "SIMR_ANALYSIS_CACHE=0";

    auto svc = svc::buildService("memc");
    auto a1 = analysis::gateAndProve(svc->program());
    uint64_t hits0 = cache->hits();
    auto a2 = analysis::gateAndProve(svc->program());
    EXPECT_EQ(a1.get(), a2.get());            // shared, not re-analyzed
    EXPECT_GT(cache->hits(), hits0);

    // A different program is a different entry (fingerprint key).
    auto other = svc::buildService("post");
    auto a3 = analysis::gateAndProve(other->program());
    EXPECT_NE(a3.get(), a1.get());
    EXPECT_NE(a3->fingerprint, a1->fingerprint);

    // An identical rebuild of the same service hits the same entry.
    auto rebuilt = svc::buildService("memc");
    auto a4 = analysis::gateAndProve(rebuilt->program());
    EXPECT_EQ(a4.get(), a1.get());
}

// ---------------------------------------------------------------------------
// Deterministic rendering: sorted verdicts and reproducible JSON (the
// CLI's `analyze --dataflow --json` golden contract).
// ---------------------------------------------------------------------------

TEST(DataflowGolden, VerdictsSortedByFuncThenPc)
{
    for (const auto &name : svc::serviceNames()) {
        auto svc = svc::buildService(name);
        Report r = analysis::analyze(svc->program());
        const DataflowInfo &df = r.dataflow;
        for (size_t i = 1; i < df.branches.size(); ++i) {
            const auto &a = df.branches[i - 1];
            const auto &b = df.branches[i];
            EXPECT_TRUE(a.func < b.func ||
                        (a.func == b.func && a.pc < b.pc)) << name;
        }
        for (size_t i = 1; i < df.mems.size(); ++i) {
            const auto &a = df.mems[i - 1];
            const auto &b = df.mems[i];
            EXPECT_TRUE(a.func < b.func ||
                        (a.func == b.func && a.pc < b.pc)) << name;
        }
    }
}

TEST(DataflowGolden, JsonIsReproducibleAndStructured)
{
    auto svc = svc::buildService("mcrouter");
    Report r1 = analysis::analyze(svc->program());
    Report r2 = analysis::analyze(svc->program());
    std::string j1 = r1.json();
    EXPECT_EQ(j1, r2.json());                 // bit-reproducible

    // The dataflow object and its summary fields (the golden keys the
    // CLI's --dataflow --json consumers rely on).
    EXPECT_NE(j1.find("\"dataflow\": {"), std::string::npos);
    EXPECT_NE(j1.find("\"ran\": true"), std::string::npos);
    EXPECT_NE(j1.find("\"tier_bound\": 1"), std::string::npos);
    EXPECT_NE(j1.find("\"may_id_dep\": false"), std::string::npos);
    EXPECT_NE(j1.find("\"uniformity\": "), std::string::npos);
    EXPECT_NE(j1.find("\"mems\": ["), std::string::npos);

    // Balanced braces/brackets: the rendering must stay parseable.
    int brace = 0, bracket = 0;
    bool instr = false;
    for (size_t i = 0; i < j1.size(); ++i) {
        char c = j1[i];
        if (instr) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                instr = false;
            continue;
        }
        if (c == '"')
            instr = true;
        else if (c == '{')
            ++brace;
        else if (c == '}')
            --brace;
        else if (c == '[')
            ++bracket;
        else if (c == ']')
            --bracket;
        EXPECT_GE(brace, 0);
        EXPECT_GE(bracket, 0);
    }
    EXPECT_EQ(brace, 0);
    EXPECT_EQ(bracket, 0);
}

} // namespace
} // namespace simr
