/**
 * @file
 * Trace capture/replay unit tests: relocation across hardware slots,
 * taint-tier classification, cache thread-safety and eviction, and
 * stream-level (whole front end) round-trips.
 *
 * The tier-1 trace_replay_gate proves replay bit-identical end to end;
 * these tests pin down the mechanisms underneath it -- in particular
 * that a trace captured in slot 0's frame replays *relocated* into
 * slots 1..7 exactly as a live interpreter runs there, under both
 * allocator policies.
 */

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mem/allocator.h"
#include "services/service.h"
#include "simr/runner.h"
#include "simr/streamcache.h"
#include "trace/capture.h"
#include "trace/replay.h"
#include "trace/stream.h"

using namespace simr;

namespace
{

/** Live-run one request, capturing; returns the finished trace. */
std::shared_ptr<const trace::CapturedTrace>
captureRequest(const trace::ProgramIndex &pi, const trace::ThreadInit &init)
{
    trace::ThreadState live(pi.program());
    trace::CaptureBuilder builder(pi);
    live.reset(init);
    builder.reset(init);
    trace::StepResult r;
    while (!live.done()) {
        live.step(r);
        builder.onStep(r);
    }
    return builder.finish();
}

/**
 * Replay `t` relocated to `init` and compare it op by op against a
 * live interpreter run of the same init. Fatal on first divergence.
 */
void
expectReplayMatchesLive(const trace::ProgramIndex &pi,
                        std::shared_ptr<const trace::CapturedTrace> t,
                        const trace::ThreadInit &init)
{
    trace::ThreadState live(pi.program());
    live.reset(init);
    trace::ReplayCursor cursor(pi);
    cursor.start(std::move(t), init);

    trace::StepResult a, b;
    uint64_t op = 0;
    while (!live.done()) {
        ASSERT_FALSE(cursor.done()) << "replay short at op " << op;
        ASSERT_EQ(cursor.curPc(), live.curPc()) << "op " << op;
        live.step(a);
        cursor.step(b);
        ASSERT_EQ(a.si, b.si) << "op " << op;
        ASSERT_EQ(a.pc, b.pc) << "op " << op;
        ASSERT_EQ(a.taken, b.taken) << "op " << op;
        ASSERT_EQ(a.addr, b.addr) << "op " << op;
        ASSERT_EQ(a.accessSize, b.accessSize) << "op " << op;
        ASSERT_EQ(a.callDepth, b.callDepth) << "op " << op;
        ASSERT_EQ(a.dep1, b.dep1) << "op " << op;
        ASSERT_EQ(a.dep2, b.dep2) << "op " << op;
        ++op;
    }
    ASSERT_TRUE(cursor.done());
    ASSERT_EQ(cursor.dynCount(), live.dynCount());
}

/**
 * A trace captured from slot 0 must replay into slots 1..7 exactly as
 * a live interpreter runs there, for traces whose taint proof shows
 * them frame-invariant (the only ones the cache serves cross-frame).
 */
void
relocationAcrossSlots(mem::AllocPolicy policy)
{
    auto svc = svc::buildService("memc");
    ASSERT_NE(svc, nullptr);
    trace::ProgramIndex pi(svc->program());
    mem::HeapAllocator alloc(policy);
    auto reqs = genRequests(*svc, 64, 7);

    int clean = 0;
    for (const auto &req : reqs) {
        trace::ThreadInit init0 =
            svc::makeThreadInit(*svc, req, 0, 0, alloc);
        auto t = captureRequest(pi, init0);

        // Every trace, any tier: replay in the frame it was captured
        // in must reproduce the live run.
        expectReplayMatchesLive(pi, t, init0);
        ASSERT_FALSE(::testing::Test::HasFatalFailure());

        if (t->identityDependent() || t->frameDependent())
            continue;
        ++clean;
        for (int slot = 1; slot <= 7; ++slot) {
            trace::ThreadInit initK = svc::makeThreadInit(
                *svc, req, slot, static_cast<uint64_t>(slot), alloc);
            ASSERT_NE(initK.stackTop, init0.stackTop);
            expectReplayMatchesLive(pi, t, initK);
            ASSERT_FALSE(::testing::Test::HasFatalFailure());
        }
    }
    // The scan must actually exercise cross-slot relocation.
    EXPECT_GT(clean, 0);
}

bool
sameDynOp(const trace::DynOp &a, const trace::DynOp &b)
{
    if (a.si != b.si || a.pc != b.pc || a.mask != b.mask ||
        a.takenMask != b.takenMask || a.callDepth != b.callDepth ||
        a.dep1 != b.dep1 || a.dep2 != b.dep2 ||
        a.accessSize != b.accessSize || a.addrCount != b.addrCount ||
        a.pathSwitch != b.pathSwitch || a.endMask != b.endMask ||
        a.batchStart != b.batchStart)
        return false;
    for (uint8_t i = 0; i < a.addrCount; ++i)
        if (a.lane[i] != b.lane[i] || a.addr[i] != b.addr[i])
            return false;
    return true;
}

} // namespace

TEST(Relocation, Slot0ToSlots1Through7GlibcLike)
{
    relocationAcrossSlots(mem::AllocPolicy::GlibcLike);
}

TEST(Relocation, Slot0ToSlots1Through7SimrAware)
{
    relocationAcrossSlots(mem::AllocPolicy::SimrAware);
}

TEST(Classification, TierMatchesTaintAndGatesLookup)
{
    mem::HeapAllocator alloc(mem::AllocPolicy::SimrAware);
    int clean = 0, id_dep = 0;
    for (const auto &name : svc::serviceNames()) {
        auto svc = svc::buildService(name);
        ASSERT_NE(svc, nullptr);
        trace::ProgramIndex pi(svc->program());
        auto reqs = genRequests(*svc, 16, 11);
        for (const auto &req : reqs) {
            trace::ThreadInit init =
                svc::makeThreadInit(*svc, req, 0, 0, alloc);
            auto t = captureRequest(pi, init);

            trace::TraceCache cache;
            cache.insert(pi.fingerprint(), init, t);

            // Exact identity always hits, whatever the tier.
            bool dedup = true;
            EXPECT_NE(cache.lookup(pi.fingerprint(), init, &dedup),
                      nullptr);
            EXPECT_FALSE(dedup);

            // The same request content under a different identity and
            // frame: served only when the taint proof shows the trace
            // invariant (canonical tier).
            trace::ThreadInit other = init;
            other.reqId += 1000;
            other.tid += 1;
            other.stackTop += 0x10000;
            other.heapBase += 0x10000;
            auto hit = cache.lookup(pi.fingerprint(), other, &dedup);
            if (!t->identityDependent() && !t->frameDependent()) {
                ++clean;
                ASSERT_NE(hit, nullptr);
                EXPECT_TRUE(dedup);
            } else {
                ASSERT_EQ(hit, nullptr);
            }

            // Same frame, different request identity: identity-
            // dependent traces must not be shared even there.
            if (t->identityDependent()) {
                ++id_dep;
                trace::ThreadInit sameFrame = init;
                sameFrame.reqId += 1000;
                EXPECT_EQ(cache.lookup(pi.fingerprint(), sameFrame,
                                       nullptr),
                          nullptr);
            }
        }
    }
    // The suite only means something if both tiers actually occur.
    EXPECT_GT(clean, 0);
    EXPECT_GT(id_dep, 0);
}

TEST(TraceCache, ThreadSafeSharedCaptureAndEviction)
{
    auto svc = svc::buildService("urlshort");
    ASSERT_NE(svc, nullptr);
    trace::ProgramIndex pi(svc->program());
    mem::HeapAllocator alloc(mem::AllocPolicy::SimrAware);
    auto reqs = genRequests(*svc, 128, 3);

    // Tiny budget: inserts must evict rather than grow, and never
    // underflow the byte accounting.
    trace::TraceCache cache(64 << 10);
    std::atomic<uint64_t> replayed{0};
    std::vector<std::thread> workers;
    for (int w = 0; w < 4; ++w) {
        workers.emplace_back([&, w]() {
            for (size_t i = static_cast<size_t>(w); i < reqs.size();
                 i += 4) {
                trace::ThreadInit init = svc::makeThreadInit(
                    *svc, reqs[i], 0, static_cast<uint64_t>(w), alloc);
                bool dedup = false;
                if (auto t = cache.lookup(pi.fingerprint(), init,
                                          &dedup)) {
                    trace::ReplayCursor cursor(pi);
                    cursor.start(t, init);
                    trace::StepResult r;
                    while (!cursor.done())
                        cursor.step(r);
                    replayed.fetch_add(cursor.dynCount());
                } else {
                    cache.insert(pi.fingerprint(), init,
                                 captureRequest(pi, init));
                }
            }
        });
    }
    for (auto &t : workers)
        t.join();

    EXPECT_GT(cache.entries(), 0u);
    // Eviction never removes the hottest entry, so the budget may be
    // exceeded by at most one trace -- not unboundedly.
    EXPECT_LE(cache.bytesResident(),
              cache.budgetBytes() + (64 << 10) * 16);
    EXPECT_GT(cache.evictions(), 0u);
}

TEST(StreamTrace, RoundTripsScalarStream)
{
    auto svc = svc::buildService("memc");
    ASSERT_NE(svc, nullptr);
    auto reqs = genRequests(*svc, 32, 5);

    trace::ScalarStream live(
        svc->program(),
        makeScalarProvider(*svc, reqs, 0, mem::AllocPolicy::SimrAware),
        nullptr);
    trace::CapturingStream cap(svc->program(), live);

    std::vector<trace::DynOp> ops;
    trace::DynOp op;
    while (cap.next(op)) {
        ops.push_back(trace::DynOp{});
        ops.back().copyFrom(op);
    }
    auto t = cap.take();
    ASSERT_NE(t, nullptr);
    ASSERT_EQ(t->opCount(), ops.size());

    trace::ReplayStream replay(svc->program(), t);
    size_t i = 0;
    while (replay.next(op)) {
        ASSERT_LT(i, ops.size());
        ASSERT_TRUE(sameDynOp(ops[i], op)) << "op " << i;
        ++i;
    }
    EXPECT_EQ(i, ops.size());
    EXPECT_EQ(replay.requestsCompleted(), live.requestsCompleted());
    EXPECT_EQ(replay.requestsCompleted(), reqs.size());
}

TEST(StreamTrace, PartialDrainIsNeverCached)
{
    auto svc = svc::buildService("memc");
    ASSERT_NE(svc, nullptr);
    auto reqs = genRequests(*svc, 8, 5);

    trace::ScalarStream live(
        svc->program(),
        makeScalarProvider(*svc, reqs, 0, mem::AllocPolicy::SimrAware),
        nullptr);
    trace::CapturingStream cap(svc->program(), live);
    trace::DynOp op;
    for (int i = 0; i < 100; ++i)
        ASSERT_TRUE(cap.next(op));
    EXPECT_EQ(cap.take(), nullptr);
}

TEST(StreamCacheTest, LruEvictionKeepsHottest)
{
    auto svc = svc::buildService("memc");
    ASSERT_NE(svc, nullptr);

    auto capture = [&](int requests, uint64_t seed) {
        auto reqs = genRequests(*svc, requests, seed);
        trace::ScalarStream live(
            svc->program(),
            makeScalarProvider(*svc, reqs, 0,
                               mem::AllocPolicy::SimrAware),
            nullptr);
        trace::CapturingStream cap(svc->program(), live);
        trace::DynOp op;
        while (cap.next(op)) {
        }
        return cap.take();
    };

    auto t = capture(8, 5);
    ASSERT_NE(t, nullptr);

    // Budget below one stream: the single entry must survive (eviction
    // never frees the hottest entry), further inserts must evict.
    StreamCache small(t->byteSize() / 2);
    small.insert("a", StreamEntry{t, simt::SimtStats{}});
    EXPECT_EQ(small.entries(), 1u);
    small.insert("b", StreamEntry{capture(8, 6), simt::SimtStats{}});
    EXPECT_EQ(small.entries(), 1u);
    EXPECT_GT(small.evictions(), 0u);

    // "b" is the survivor; a lookup must still replay it faithfully.
    StreamEntry ent;
    EXPECT_FALSE(small.lookup("a", &ent));
    ASSERT_TRUE(small.lookup("b", &ent));
    ASSERT_NE(ent.trace, nullptr);
    trace::ReplayStream replay(svc->program(), ent.trace);
    trace::DynOp op;
    uint64_t n = 0;
    while (replay.next(op))
        ++n;
    EXPECT_EQ(n, ent.trace->opCount());

    // Null-trace entries are rejected, not cached.
    small.insert("null", StreamEntry{nullptr, simt::SimtStats{}});
    EXPECT_FALSE(small.lookup("null", &ent));
}
