/**
 * @file
 * Trace capture/replay unit tests: relocation across hardware slots,
 * taint-tier classification, cache thread-safety and eviction, and
 * stream-level (whole front end) round-trips.
 *
 * The tier-1 trace_replay_gate proves replay bit-identical end to end;
 * these tests pin down the mechanisms underneath it -- in particular
 * that a trace captured in slot 0's frame replays *relocated* into
 * slots 1..7 exactly as a live interpreter runs there, under both
 * allocator policies.
 */

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mem/allocator.h"
#include "services/service.h"
#include "simr/runner.h"
#include "simr/streamcache.h"
#include "simt/lockstep.h"
#include "trace/capture.h"
#include "trace/compile.h"
#include "trace/kernels.h"
#include "trace/replay.h"
#include "trace/stream.h"

using namespace simr;

namespace
{

/** Live-run one request, capturing; returns the finished trace. */
std::shared_ptr<const trace::CapturedTrace>
captureRequest(const trace::ProgramIndex &pi, const trace::ThreadInit &init)
{
    trace::ThreadState live(pi.program());
    trace::CaptureBuilder builder(pi);
    live.reset(init);
    builder.reset(init);
    trace::StepResult r;
    while (!live.done()) {
        live.step(r);
        builder.onStep(r);
    }
    return builder.finish();
}

/**
 * Replay `t` relocated to `init` and compare it op by op against a
 * live interpreter run of the same init. Fatal on first divergence.
 */
void
expectReplayMatchesLive(const trace::ProgramIndex &pi,
                        std::shared_ptr<const trace::CapturedTrace> t,
                        const trace::ThreadInit &init)
{
    trace::ThreadState live(pi.program());
    live.reset(init);
    trace::ReplayCursor cursor(pi);
    cursor.start(std::move(t), init);

    trace::StepResult a, b;
    uint64_t op = 0;
    while (!live.done()) {
        ASSERT_FALSE(cursor.done()) << "replay short at op " << op;
        ASSERT_EQ(cursor.curPc(), live.curPc()) << "op " << op;
        live.step(a);
        cursor.step(b);
        ASSERT_EQ(a.si, b.si) << "op " << op;
        ASSERT_EQ(a.pc, b.pc) << "op " << op;
        ASSERT_EQ(a.taken, b.taken) << "op " << op;
        ASSERT_EQ(a.addr, b.addr) << "op " << op;
        ASSERT_EQ(a.accessSize, b.accessSize) << "op " << op;
        ASSERT_EQ(a.callDepth, b.callDepth) << "op " << op;
        ASSERT_EQ(a.dep1, b.dep1) << "op " << op;
        ASSERT_EQ(a.dep2, b.dep2) << "op " << op;
        ++op;
    }
    ASSERT_TRUE(cursor.done());
    ASSERT_EQ(cursor.dynCount(), live.dynCount());
}

/**
 * A trace captured from slot 0 must replay into slots 1..7 exactly as
 * a live interpreter runs there, for traces whose taint proof shows
 * them frame-invariant (the only ones the cache serves cross-frame).
 */
void
relocationAcrossSlots(mem::AllocPolicy policy)
{
    auto svc = svc::buildService("memc");
    ASSERT_NE(svc, nullptr);
    trace::ProgramIndex pi(svc->program());
    mem::HeapAllocator alloc(policy);
    auto reqs = genRequests(*svc, 64, 7);

    int clean = 0;
    for (const auto &req : reqs) {
        trace::ThreadInit init0 =
            svc::makeThreadInit(*svc, req, 0, 0, alloc);
        auto t = captureRequest(pi, init0);

        // Every trace, any tier: replay in the frame it was captured
        // in must reproduce the live run.
        expectReplayMatchesLive(pi, t, init0);
        ASSERT_FALSE(::testing::Test::HasFatalFailure());

        if (t->identityDependent() || t->frameDependent())
            continue;
        ++clean;
        for (int slot = 1; slot <= 7; ++slot) {
            trace::ThreadInit initK = svc::makeThreadInit(
                *svc, req, slot, static_cast<uint64_t>(slot), alloc);
            ASSERT_NE(initK.stackTop, init0.stackTop);
            expectReplayMatchesLive(pi, t, initK);
            ASSERT_FALSE(::testing::Test::HasFatalFailure());
        }
    }
    // The scan must actually exercise cross-slot relocation.
    EXPECT_GT(clean, 0);
}

bool
sameDynOp(const trace::DynOp &a, const trace::DynOp &b)
{
    if (a.si != b.si || a.pc != b.pc || a.mask != b.mask ||
        a.takenMask != b.takenMask || a.callDepth != b.callDepth ||
        a.dep1 != b.dep1 || a.dep2 != b.dep2 ||
        a.accessSize != b.accessSize || a.addrCount != b.addrCount ||
        a.pathSwitch != b.pathSwitch || a.endMask != b.endMask ||
        a.batchStart != b.batchStart)
        return false;
    for (uint8_t i = 0; i < a.addrCount; ++i)
        if (a.lane[i] != b.lane[i] || a.addr[i] != b.addr[i])
            return false;
    return true;
}

} // namespace

TEST(Relocation, Slot0ToSlots1Through7GlibcLike)
{
    relocationAcrossSlots(mem::AllocPolicy::GlibcLike);
}

TEST(Relocation, Slot0ToSlots1Through7SimrAware)
{
    relocationAcrossSlots(mem::AllocPolicy::SimrAware);
}

TEST(Classification, TierMatchesTaintAndGatesLookup)
{
    mem::HeapAllocator alloc(mem::AllocPolicy::SimrAware);
    int clean = 0, id_dep = 0;
    for (const auto &name : svc::serviceNames()) {
        auto svc = svc::buildService(name);
        ASSERT_NE(svc, nullptr);
        trace::ProgramIndex pi(svc->program());
        auto reqs = genRequests(*svc, 16, 11);
        for (const auto &req : reqs) {
            trace::ThreadInit init =
                svc::makeThreadInit(*svc, req, 0, 0, alloc);
            auto t = captureRequest(pi, init);

            trace::TraceCache cache;
            cache.insert(pi.fingerprint(), init, t);

            // Exact identity always hits, whatever the tier.
            bool dedup = true;
            EXPECT_NE(cache.lookup(pi.fingerprint(), init, &dedup),
                      nullptr);
            EXPECT_FALSE(dedup);

            // The same request content under a different identity and
            // frame: served only when the taint proof shows the trace
            // invariant (canonical tier).
            trace::ThreadInit other = init;
            other.reqId += 1000;
            other.tid += 1;
            other.stackTop += 0x10000;
            other.heapBase += 0x10000;
            auto hit = cache.lookup(pi.fingerprint(), other, &dedup);
            if (!t->identityDependent() && !t->frameDependent()) {
                ++clean;
                ASSERT_NE(hit, nullptr);
                EXPECT_TRUE(dedup);
            } else {
                ASSERT_EQ(hit, nullptr);
            }

            // Same frame, different request identity: identity-
            // dependent traces must not be shared even there.
            if (t->identityDependent()) {
                ++id_dep;
                trace::ThreadInit sameFrame = init;
                sameFrame.reqId += 1000;
                EXPECT_EQ(cache.lookup(pi.fingerprint(), sameFrame,
                                       nullptr),
                          nullptr);
            }
        }
    }
    // The suite only means something if both tiers actually occur.
    EXPECT_GT(clean, 0);
    EXPECT_GT(id_dep, 0);
}

TEST(TraceCache, ThreadSafeSharedCaptureAndEviction)
{
    auto svc = svc::buildService("urlshort");
    ASSERT_NE(svc, nullptr);
    trace::ProgramIndex pi(svc->program());
    mem::HeapAllocator alloc(mem::AllocPolicy::SimrAware);
    auto reqs = genRequests(*svc, 128, 3);

    // Tiny budget: inserts must evict rather than grow, and never
    // underflow the byte accounting.
    trace::TraceCache cache(64 << 10);
    std::atomic<uint64_t> replayed{0};
    std::vector<std::thread> workers;
    for (int w = 0; w < 4; ++w) {
        workers.emplace_back([&, w]() {
            for (size_t i = static_cast<size_t>(w); i < reqs.size();
                 i += 4) {
                trace::ThreadInit init = svc::makeThreadInit(
                    *svc, reqs[i], 0, static_cast<uint64_t>(w), alloc);
                bool dedup = false;
                if (auto t = cache.lookup(pi.fingerprint(), init,
                                          &dedup)) {
                    trace::ReplayCursor cursor(pi);
                    cursor.start(t, init);
                    trace::StepResult r;
                    while (!cursor.done())
                        cursor.step(r);
                    replayed.fetch_add(cursor.dynCount());
                } else {
                    cache.insert(pi.fingerprint(), init,
                                 captureRequest(pi, init));
                }
            }
        });
    }
    for (auto &t : workers)
        t.join();

    EXPECT_GT(cache.entries(), 0u);
    // Eviction never removes the hottest entry, so the budget may be
    // exceeded by at most one trace -- not unboundedly.
    EXPECT_LE(cache.bytesResident(),
              cache.budgetBytes() + (64 << 10) * 16);
    EXPECT_GT(cache.evictions(), 0u);
}

TEST(StreamTrace, RoundTripsScalarStream)
{
    auto svc = svc::buildService("memc");
    ASSERT_NE(svc, nullptr);
    auto reqs = genRequests(*svc, 32, 5);

    trace::ScalarStream live(
        svc->program(),
        makeScalarProvider(*svc, reqs, 0, mem::AllocPolicy::SimrAware),
        nullptr);
    trace::CapturingStream cap(svc->program(), live);

    std::vector<trace::DynOp> ops;
    trace::DynOp op;
    while (cap.next(op)) {
        ops.push_back(trace::DynOp{});
        ops.back().copyFrom(op);
    }
    auto t = cap.take();
    ASSERT_NE(t, nullptr);
    ASSERT_EQ(t->opCount(), ops.size());

    trace::ReplayStream replay(svc->program(), t);
    size_t i = 0;
    while (replay.next(op)) {
        ASSERT_LT(i, ops.size());
        ASSERT_TRUE(sameDynOp(ops[i], op)) << "op " << i;
        ++i;
    }
    EXPECT_EQ(i, ops.size());
    EXPECT_EQ(replay.requestsCompleted(), live.requestsCompleted());
    EXPECT_EQ(replay.requestsCompleted(), reqs.size());
}

TEST(StreamTrace, PartialDrainIsNeverCached)
{
    auto svc = svc::buildService("memc");
    ASSERT_NE(svc, nullptr);
    auto reqs = genRequests(*svc, 8, 5);

    trace::ScalarStream live(
        svc->program(),
        makeScalarProvider(*svc, reqs, 0, mem::AllocPolicy::SimrAware),
        nullptr);
    trace::CapturingStream cap(svc->program(), live);
    trace::DynOp op;
    for (int i = 0; i < 100; ++i)
        ASSERT_TRUE(cap.next(op));
    EXPECT_EQ(cap.take(), nullptr);
}

TEST(StreamCacheTest, LruEvictionKeepsHottest)
{
    auto svc = svc::buildService("memc");
    ASSERT_NE(svc, nullptr);

    auto capture = [&](int requests, uint64_t seed) {
        auto reqs = genRequests(*svc, requests, seed);
        trace::ScalarStream live(
            svc->program(),
            makeScalarProvider(*svc, reqs, 0,
                               mem::AllocPolicy::SimrAware),
            nullptr);
        trace::CapturingStream cap(svc->program(), live);
        trace::DynOp op;
        while (cap.next(op)) {
        }
        return cap.take();
    };

    auto t = capture(8, 5);
    ASSERT_NE(t, nullptr);

    // Budget below one stream: the single entry must survive (eviction
    // never frees the hottest entry), further inserts must evict.
    StreamCache small(t->byteSize() / 2);
    small.insert("a", StreamEntry{t, nullptr, simt::SimtStats{}});
    EXPECT_EQ(small.entries(), 1u);
    small.insert("b", StreamEntry{capture(8, 6), nullptr, simt::SimtStats{}});
    EXPECT_EQ(small.entries(), 1u);
    EXPECT_GT(small.evictions(), 0u);

    // "b" is the survivor; a lookup must still replay it faithfully.
    StreamEntry ent;
    EXPECT_FALSE(small.lookup("a", &ent));
    ASSERT_TRUE(small.lookup("b", &ent));
    ASSERT_NE(ent.trace, nullptr);
    trace::ReplayStream replay(svc->program(), ent.trace);
    trace::DynOp op;
    uint64_t n = 0;
    while (replay.next(op))
        ++n;
    EXPECT_EQ(n, ent.trace->opCount());

    // Null-trace entries are rejected, not cached.
    small.insert("null", StreamEntry{nullptr, nullptr, simt::SimtStats{}});
    EXPECT_FALSE(small.lookup("null", &ent));
}

// ---------------------------------------------------------------------------
// Varint/zigzag boundary coverage: the address-arena encoding must
// round-trip every signed 64-bit delta, including the values whose
// zigzag image needs the maximal 10-byte LEB128 form.

TEST(VarintZigzag, SignBoundariesMapAsDocumented)
{
    using trace::detail::unzigzag;
    using trace::detail::zigzag;

    // Small magnitudes interleave around zero...
    EXPECT_EQ(zigzag(0), 0u);
    EXPECT_EQ(zigzag(-1), 1u);
    EXPECT_EQ(zigzag(1), 2u);
    EXPECT_EQ(zigzag(-2), 3u);
    // ...and INT64_MIN (the one value with no positive counterpart)
    // maps to the all-ones code.
    EXPECT_EQ(zigzag(std::numeric_limits<int64_t>::min()),
              ~uint64_t{0});
    EXPECT_EQ(zigzag(std::numeric_limits<int64_t>::max()),
              ~uint64_t{0} - 1);
}

TEST(VarintZigzag, BoundaryDeltasRoundTrip)
{
    using trace::detail::getVarint;
    using trace::detail::putVarint;
    using trace::detail::unzigzag;
    using trace::detail::zigzag;

    // Alternating signs, 7-bit group boundaries, and the extremes that
    // exercise the 9- and 10-byte encodings (deltas > 2^56 after
    // zigzag doubling).
    std::vector<int64_t> deltas = {
        0, 1, -1, 2, -2, 63, -64, 64, -65,
        (int64_t{1} << 35) - 1, -(int64_t{1} << 35),
        (int64_t{1} << 56), -(int64_t{1} << 56) - 1,
        std::numeric_limits<int64_t>::max(),
        std::numeric_limits<int64_t>::min() + 1,
        std::numeric_limits<int64_t>::min(),
    };
    // A long alternating-sign ramp on top, so consecutive encodings of
    // different lengths sit back to back in one arena.
    for (int i = 0; i < 64; ++i) {
        const int64_t mag = int64_t{1} << (i % 63);
        deltas.push_back((i & 1) ? -mag : mag);
    }

    std::vector<uint8_t> arena;
    std::vector<size_t> lens;
    for (int64_t d : deltas) {
        const size_t before = arena.size();
        putVarint(arena, zigzag(d));
        lens.push_back(arena.size() - before);
    }

    size_t pos = 0;
    for (size_t i = 0; i < deltas.size(); ++i) {
        const size_t before = pos;
        EXPECT_EQ(unzigzag(getVarint(arena.data(), pos)), deltas[i])
            << "delta " << i;
        EXPECT_EQ(pos - before, lens[i]) << "delta " << i;
    }
    EXPECT_EQ(pos, arena.size());
}

TEST(VarintZigzag, EveryEncodingLengthRoundTrips)
{
    using trace::detail::getVarint;
    using trace::detail::putVarint;

    // Both sides of every 7-bit length boundary, through the 10-byte
    // maximum (64 payload bits need ceil(64/7) = 10 groups).
    std::vector<uint64_t> vals = {0};
    std::vector<size_t> wantLen = {1};
    for (int k = 1; k <= 9; ++k) {
        vals.push_back((uint64_t{1} << (7 * k)) - 1);
        wantLen.push_back(static_cast<size_t>(k));
        vals.push_back(uint64_t{1} << (7 * k));
        wantLen.push_back(static_cast<size_t>(k) + 1);
    }
    vals.push_back(~uint64_t{0});
    wantLen.push_back(10);

    std::vector<uint8_t> arena;
    for (size_t i = 0; i < vals.size(); ++i) {
        const size_t before = arena.size();
        putVarint(arena, vals[i]);
        EXPECT_EQ(arena.size() - before, wantLen[i]) << "val " << i;
    }
    size_t pos = 0;
    for (size_t i = 0; i < vals.size(); ++i)
        EXPECT_EQ(getVarint(arena.data(), pos), vals[i]) << "val " << i;
    EXPECT_EQ(pos, arena.size());
}

// ---------------------------------------------------------------------------
// Superop kernels: compiled replay must be indistinguishable from the
// cursor (and therefore from live interpretation) at every surface.

namespace
{

/**
 * Compile `t` and replay it side by side with a ReplayCursor relocated
 * to the same `init`: every StepResult field and every position
 * accessor must agree at every op. Fatal on first divergence.
 */
void
expectCompiledMatchesCursor(const trace::ProgramIndex &pi,
                            std::shared_ptr<const trace::CapturedTrace> t,
                            const trace::ThreadInit &init)
{
    auto k = trace::compileTrace(t);
    ASSERT_NE(k, nullptr);
    ASSERT_EQ(k->opCount(), t->opCount());
    ASSERT_EQ(&k->src(), t.get());

    trace::ReplayCursor cursor(pi);
    cursor.start(t, init);
    trace::CompiledCursor comp(pi);
    comp.start(k, init);

    trace::StepResult a, b;
    uint64_t op = 0;
    while (!cursor.done()) {
        ASSERT_FALSE(comp.done()) << "compiled short at op " << op;
        ASSERT_EQ(comp.curPc(), cursor.curPc()) << "op " << op;
        ASSERT_EQ(comp.curBlock(), cursor.curBlock()) << "op " << op;
        ASSERT_EQ(comp.curIdx(), cursor.curIdx()) << "op " << op;
        ASSERT_EQ(comp.callDepth(), cursor.callDepth()) << "op " << op;
        cursor.step(a);
        comp.step(b);
        ASSERT_EQ(a.si, b.si) << "op " << op;
        ASSERT_EQ(a.pc, b.pc) << "op " << op;
        ASSERT_EQ(a.taken, b.taken) << "op " << op;
        ASSERT_EQ(a.addr, b.addr) << "op " << op;
        ASSERT_EQ(a.accessSize, b.accessSize) << "op " << op;
        ASSERT_EQ(a.callDepth, b.callDepth) << "op " << op;
        ASSERT_EQ(a.dep1, b.dep1) << "op " << op;
        ASSERT_EQ(a.dep2, b.dep2) << "op " << op;
        ++op;
    }
    ASSERT_TRUE(comp.done());
    ASSERT_EQ(comp.dynCount(), cursor.dynCount());
}

/** Engine over one batch of explicit thread contexts. */
simt::LockstepEngine::BatchProvider
oneBatchOf(std::vector<trace::ThreadInit> inits)
{
    auto state = std::make_shared<std::vector<trace::ThreadInit>>(
        std::move(inits));
    auto used = std::make_shared<bool>(false);
    return [state, used](std::vector<trace::ThreadInit> &out) -> int {
        if (*used)
            return 0;
        *used = true;
        out = *state;
        return static_cast<int>(out.size());
    };
}

uint64_t
drainEngine(simt::LockstepEngine &e, std::vector<trace::DynOp> *ops)
{
    trace::DynOp op;
    uint64_t n = 0;
    while (e.next(op)) {
        ++n;
        if (ops) {
            ops->push_back(trace::DynOp{});
            ops->back().copyFrom(op);
        }
    }
    return n;
}

} // namespace

TEST(CompiledTraceKernel, MatchesCursorAcrossTiersAndSlots)
{
    trace::setCompileEnabled(true);
    mem::HeapAllocator alloc(mem::AllocPolicy::SimrAware);
    int clean = 0, tainted = 0;
    for (const auto &name : svc::serviceNames()) {
        auto svc = svc::buildService(name);
        ASSERT_NE(svc, nullptr);
        trace::ProgramIndex pi(svc->program());
        auto reqs = genRequests(*svc, 8, 17);
        for (const auto &req : reqs) {
            trace::ThreadInit init0 =
                svc::makeThreadInit(*svc, req, 0, 0, alloc);
            auto t = captureRequest(pi, init0);

            // Every trace, any taint tier: the kernel must replay in
            // the capture frame exactly as the cursor does.
            expectCompiledMatchesCursor(pi, t, init0);
            ASSERT_FALSE(::testing::Test::HasFatalFailure());

            if (t->identityDependent() || t->frameDependent()) {
                ++tainted;
                continue;
            }
            ++clean;
            // Clean traces also replay *relocated*; the kernel's
            // per-AddrKind shifts must match the cursor's.
            trace::ThreadInit init5 =
                svc::makeThreadInit(*svc, req, 5, 5, alloc);
            ASSERT_NE(init5.stackTop, init0.stackTop);
            expectCompiledMatchesCursor(pi, t, init5);
            ASSERT_FALSE(::testing::Test::HasFatalFailure());
        }
    }
    // The scan is vacuous unless both tiers actually occurred.
    EXPECT_GT(clean, 0);
    EXPECT_GT(tainted, 0);
}

TEST(CompiledBatch, UniformBatchEngagesKernelBitIdentical)
{
    trace::setCompileEnabled(true);
    auto svc = svc::buildService("memc");
    ASSERT_NE(svc, nullptr);
    trace::ProgramIndex pi(svc->program());
    mem::HeapAllocator alloc(mem::AllocPolicy::SimrAware);
    auto reqs = genRequests(*svc, 32, 7);

    // A canonical-tier request: all four lanes dedup onto one cache
    // entry, so the batch is shape-uniform by construction.
    const svc::Request *cleanReq = nullptr;
    std::shared_ptr<const trace::CapturedTrace> ct;
    for (const auto &req : reqs) {
        auto t = captureRequest(
            pi, svc::makeThreadInit(*svc, req, 0, 0, alloc));
        if (!t->identityDependent() && !t->frameDependent()) {
            cleanReq = &req;
            ct = t;
            break;
        }
    }
    ASSERT_NE(cleanReq, nullptr);

    auto inits4 = [&]() {
        std::vector<trace::ThreadInit> v;
        for (int l = 0; l < 4; ++l)
            v.push_back(svc::makeThreadInit(
                *svc, *cleanReq, l, static_cast<uint64_t>(l), alloc));
        return v;
    };

    // Reference: the same batch interpreted live, no cache.
    simt::LockstepEngine ref(svc->program(),
                             simt::ReconvPolicy::MinSpPc, 4,
                             oneBatchOf(inits4()));
    std::vector<trace::DynOp> want;
    drainEngine(ref, &want);
    ASSERT_FALSE(want.empty());

    trace::TraceCache cache(64 << 20);
    auto runCached = [&](std::vector<trace::DynOp> *ops) {
        simt::LockstepEngine e(svc->program(),
                               simt::ReconvPolicy::MinSpPc, 4,
                               oneBatchOf(inits4()),
                               simt::SpinEscapeConfig(), &cache);
        drainEngine(e, ops);
        EXPECT_EQ(e.requestsCompleted(), 4u);
    };

    // Run 1 captures (4 misses on one key, first insert wins). Run 2 is
    // the mixed batch -- the dedup entry reaches its second hit while
    // the batch launches, so cursor and compiled lanes coexist and the
    // batch kernel must decline.
    runCached(nullptr);
    std::vector<trace::DynOp> mixed;
    runCached(&mixed);
    ASSERT_EQ(mixed.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i)
        ASSERT_TRUE(sameDynOp(want[i], mixed[i])) << "mixed op " << i;

    // Run 3: every lane replays the (now compiled) kernel, so the
    // lane-major batch kernel takes the whole batch. compiledOps grows
    // by exactly the batch-op count -- the engagement signature; the
    // declined path above would have credited one share per lane.
    const trace::CompileCounters before = trace::compileCounters();
    std::vector<trace::DynOp> compiled;
    runCached(&compiled);
    const trace::CompileCounters after = trace::compileCounters();

    ASSERT_EQ(compiled.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i)
        ASSERT_TRUE(sameDynOp(want[i], compiled[i])) << "kernel op " << i;
    EXPECT_EQ(after.compiledOps - before.compiledOps, ct->opCount());

    // With AVX2 live, every memory op relocated all 4 lanes vectorized.
    const uint64_t memOps = ct->memAddr().size();
    if (trace::simdEnabled() && memOps > 0) {
        EXPECT_EQ(after.simdLanes - before.simdLanes, 4 * memOps);
    }

    EXPECT_EQ(cache.compiledEntries(), 1u);
    EXPECT_GT(cache.compiledBytes(), 0u);
}

TEST(CompiledBatch, MixedShapeBatchFallsBackBitIdentical)
{
    trace::setCompileEnabled(true);
    auto svc = svc::buildService("memc");
    ASSERT_NE(svc, nullptr);
    mem::HeapAllocator alloc(mem::AllocPolicy::SimrAware);
    auto reqs = genRequests(*svc, 4, 21);
    ASSERT_EQ(reqs.size(), 4u);

    auto inits4 = [&]() {
        std::vector<trace::ThreadInit> v;
        for (int l = 0; l < 4; ++l)
            v.push_back(svc::makeThreadInit(
                *svc, reqs[static_cast<size_t>(l)], l,
                static_cast<uint64_t>(l), alloc));
        return v;
    };

    for (auto policy : {simt::ReconvPolicy::MinSpPc,
                        simt::ReconvPolicy::StackIpdom}) {
        simt::LockstepEngine ref(svc->program(), policy, 4,
                                 oneBatchOf(inits4()));
        std::vector<trace::DynOp> want;
        drainEngine(ref, &want);
        ASSERT_FALSE(want.empty());

        // Three cached runs: capture, cursor replay, compiled replay.
        // Distinct requests give distinct (likely shape-unequal)
        // kernels, so the batch kernel declines and the per-lane
        // compiled cursors run through the full grouping/divergence
        // machinery -- which must stay bit-identical throughout.
        trace::TraceCache cache(64 << 20);
        for (int run = 0; run < 3; ++run) {
            simt::LockstepEngine e(svc->program(), policy, 4,
                                   oneBatchOf(inits4()),
                                   simt::SpinEscapeConfig(), &cache);
            std::vector<trace::DynOp> got;
            drainEngine(e, &got);
            ASSERT_EQ(got.size(), want.size()) << "run " << run;
            for (size_t i = 0; i < want.size(); ++i)
                ASSERT_TRUE(sameDynOp(want[i], got[i]))
                    << "run " << run << " op " << i;
        }
    }
}

TEST(TraceCache, CompiledKernelsEvictUnderThrashingBudget)
{
    trace::setCompileEnabled(true);
    auto svc = svc::buildService("urlshort");
    ASSERT_NE(svc, nullptr);
    trace::ProgramIndex pi(svc->program());
    mem::HeapAllocator alloc(mem::AllocPolicy::SimrAware);
    auto reqs = genRequests(*svc, 48, 13);

    // Budget far below the working set: kernels are built on second
    // hits and must be evicted *with* their entries, never leaking the
    // compiled-byte accounting.
    trace::TraceCache cache(64 << 10);
    uint64_t kernels = 0;
    for (const auto &req : reqs) {
        trace::ThreadInit init =
            svc::makeThreadInit(*svc, req, 0, 0, alloc);
        bool dedup = false;
        std::shared_ptr<const trace::CompiledTrace> k;
        auto t = cache.lookup(pi.fingerprint(), init, &dedup, &k);
        if (t == nullptr) {
            cache.insert(pi.fingerprint(), init, captureRequest(pi, init));
            t = cache.lookup(pi.fingerprint(), init, &dedup, &k);
            ASSERT_NE(t, nullptr);  // just inserted, hottest entry
        }
        // Second hit on the (still resident) entry: compiles.
        t = cache.lookup(pi.fingerprint(), init, &dedup, &k);
        ASSERT_NE(t, nullptr);
        ASSERT_NE(k, nullptr);
        EXPECT_EQ(k->opCount(), t->opCount());
        ++kernels;

        // The kernel must replay the full request in this frame.
        trace::CompiledCursor c(pi);
        c.start(k, init);
        trace::StepResult r;
        while (!c.done())
            c.step(r);
        EXPECT_EQ(c.dynCount(), t->opCount());

        // Accounting invariants hold at every step of the thrash.
        EXPECT_LE(cache.compiledEntries(), cache.entries());
        EXPECT_LE(cache.compiledBytes(), cache.bytesResident());
        EXPECT_LE(cache.bytesResident(),
                  cache.budgetBytes() + (64 << 10) * 16);
    }
    EXPECT_GT(kernels, 0u);
    EXPECT_GT(cache.evictions(), 0u);

    cache.clear();
    EXPECT_EQ(cache.entries(), 0u);
    EXPECT_EQ(cache.bytesResident(), 0u);
    EXPECT_EQ(cache.compiledEntries(), 0u);
    EXPECT_EQ(cache.compiledBytes(), 0u);
}

TEST(TraceCache, ConcurrentCompileAndReplay)
{
    trace::setCompileEnabled(true);
    auto svc = svc::buildService("urlshort");
    ASSERT_NE(svc, nullptr);
    trace::ProgramIndex pi(svc->program());
    mem::HeapAllocator alloc(mem::AllocPolicy::SimrAware);
    auto reqs = genRequests(*svc, 48, 3);

    // Generous budget: this test is about the compile-under-lock path
    // racing replay, not eviction. Every worker sweeps the full request
    // list three times, so shared entries cross the second-hit
    // threshold while other workers replay them.
    trace::TraceCache cache(256 << 20);
    std::atomic<uint64_t> kernelOps{0};
    std::atomic<uint64_t> cursorOps{0};
    std::vector<std::thread> workers;
    for (int w = 0; w < 4; ++w) {
        workers.emplace_back([&, w]() {
            for (int pass = 0; pass < 3; ++pass) {
                for (const auto &req : reqs) {
                    trace::ThreadInit init = svc::makeThreadInit(
                        *svc, req, 0, static_cast<uint64_t>(w), alloc);
                    bool dedup = false;
                    std::shared_ptr<const trace::CompiledTrace> k;
                    auto t = cache.lookup(pi.fingerprint(), init,
                                          &dedup, &k);
                    if (t == nullptr) {
                        cache.insert(pi.fingerprint(), init,
                                     captureRequest(pi, init));
                        continue;
                    }
                    if (k != nullptr) {
                        trace::CompiledCursor c(pi);
                        c.start(k, init);
                        trace::StepResult r;
                        while (!c.done())
                            c.step(r);
                        kernelOps.fetch_add(c.dynCount());
                    } else {
                        trace::ReplayCursor c(pi);
                        c.start(t, init);
                        trace::StepResult r;
                        while (!c.done())
                            c.step(r);
                        cursorOps.fetch_add(c.dynCount());
                    }
                }
            }
        });
    }
    for (auto &t : workers)
        t.join();

    // Pass 1 misses/captures, pass 2 replays (second hits compile), so
    // pass 3 must have replayed through kernels.
    EXPECT_GT(kernelOps.load(), 0u);
    EXPECT_GT(cache.compiledEntries(), 0u);
    EXPECT_LE(cache.compiledEntries(), cache.entries());
    EXPECT_LE(cache.compiledBytes(), cache.bytesResident());
}

TEST(StreamTrace, CompiledStreamMatchesDenseReplayScalar)
{
    trace::setCompileEnabled(true);
    auto svc = svc::buildService("memc");
    ASSERT_NE(svc, nullptr);
    auto reqs = genRequests(*svc, 32, 5);

    trace::ScalarStream live(
        svc->program(),
        makeScalarProvider(*svc, reqs, 0, mem::AllocPolicy::SimrAware),
        nullptr);
    trace::CapturingStream cap(svc->program(), live);
    std::vector<trace::DynOp> ops;
    trace::DynOp op;
    while (cap.next(op)) {
        ops.push_back(trace::DynOp{});
        ops.back().copyFrom(op);
    }
    auto t = cap.take();
    ASSERT_NE(t, nullptr);

    auto k = trace::compileStream(t);
    ASSERT_NE(k, nullptr);
    ASSERT_EQ(k->opCount(), t->opCount());
    ASSERT_EQ(k->totalCompleted(), reqs.size());

    // Op-by-op: the kernel path must emit the dense columns exactly.
    trace::ReplayStream replay(svc->program(), t, k);
    size_t i = 0;
    while (replay.next(op)) {
        ASSERT_LT(i, ops.size());
        ASSERT_TRUE(sameDynOp(ops[i], op)) << "op " << i;
        ++i;
    }
    EXPECT_EQ(i, ops.size());
    EXPECT_EQ(replay.requestsCompleted(), reqs.size());

    // drainCompiled: a partially-consumed compiled stream finishes in
    // O(1) with the precomputed aggregates.
    trace::ReplayStream drain(svc->program(), t, k);
    for (int j = 0; j < 10; ++j)
        ASSERT_TRUE(drain.next(op));
    uint64_t total = 10;
    ASSERT_TRUE(drain.drainCompiled(&total));
    EXPECT_EQ(total, t->opCount());
    EXPECT_EQ(drain.requestsCompleted(), reqs.size());

    // Without a kernel the caller must fall back to the per-op drain.
    trace::ReplayStream dense(svc->program(), t);
    uint64_t unused = 0;
    EXPECT_FALSE(dense.drainCompiled(&unused));
}

TEST(StreamTrace, CompiledStreamMatchesDenseReplayDivergent)
{
    trace::setCompileEnabled(true);
    auto svc = svc::buildService("memc");
    ASSERT_NE(svc, nullptr);
    mem::HeapAllocator alloc(mem::AllocPolicy::SimrAware);
    auto reqs = genRequests(*svc, 8, 9);

    std::vector<trace::ThreadInit> inits;
    for (int l = 0; l < static_cast<int>(reqs.size()); ++l)
        inits.push_back(svc::makeThreadInit(
            *svc, reqs[static_cast<size_t>(l)], l,
            static_cast<uint64_t>(l), alloc));

    // A divergent lockstep batch: partial masks, path switches and
    // multi-lane memory payloads all flow into the stream columns.
    simt::LockstepEngine engine(svc->program(),
                                simt::ReconvPolicy::MinSpPc, 8,
                                oneBatchOf(std::move(inits)));
    trace::CapturingStream cap(svc->program(), engine);
    std::vector<trace::DynOp> ops;
    trace::DynOp op;
    while (cap.next(op)) {
        ops.push_back(trace::DynOp{});
        ops.back().copyFrom(op);
    }
    auto t = cap.take();
    ASSERT_NE(t, nullptr);
    EXPECT_GT(engine.stats().divergeEvents, 0u)
        << "batch must diverge for this test to mean anything";

    auto k = trace::compileStream(t);
    ASSERT_NE(k, nullptr);
    ASSERT_EQ(k->opCount(), t->opCount());
    ASSERT_EQ(k->totalCompleted(), engine.requestsCompleted());

    trace::ReplayStream replay(svc->program(), t, k);
    size_t i = 0;
    while (replay.next(op)) {
        ASSERT_LT(i, ops.size());
        ASSERT_TRUE(sameDynOp(ops[i], op)) << "op " << i;
        ++i;
    }
    EXPECT_EQ(i, ops.size());
    EXPECT_EQ(replay.requestsCompleted(), engine.requestsCompleted());
}
