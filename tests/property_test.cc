/**
 * @file
 * Property-style tests: randomized sweeps over cache geometries, MCU
 * access patterns, address-map samples and statistics, checking
 * invariants rather than point values. Parameterized over seeds so
 * each instantiation explores a different random neighbourhood.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "common/stats.h"
#include "mem/address_space.h"
#include "mem/cache.h"
#include "mem/coalescer.h"
#include "mem/dram.h"
#include "simr/runner.h"

using namespace simr;
using namespace simr::mem;

class SeededTest : public ::testing::TestWithParam<uint64_t>
{
  protected:
    Rng rng_{GetParam()};
};

TEST_P(SeededTest, CacheInvariants)
{
    // Random geometry (power-of-two sets guaranteed by construction).
    uint64_t kb = 1ull << rng_.range(0, 6);            // 1..64 KB
    uint32_t assoc = 1u << rng_.range(0, 3);           // 1..8 ways
    CacheConfig cfg;
    cfg.sizeBytes = kb * 1024;
    cfg.assoc = assoc;
    Cache c(cfg);

    uint64_t hits = 0, n = 4000;
    std::set<Addr> lines_seen;
    for (uint64_t i = 0; i < n; ++i) {
        Addr a = rng_.below(1 << 22);
        bool hit = c.access(a, rng_.chance(0.3));
        hits += hit ? 1 : 0;
        lines_seen.insert(a / cfg.lineBytes);
        // An immediate re-access of the same address always hits.
        EXPECT_TRUE(c.probe(a));
    }
    const auto &s = c.stats();
    EXPECT_EQ(s.accesses, n);
    EXPECT_EQ(s.misses, n - hits);
    // Every distinct line's first touch is a compulsory miss.
    EXPECT_GE(s.misses, lines_seen.size());
    // Writebacks never exceed store-dirtied fills.
    EXPECT_LE(s.writebacks, s.misses);
}

TEST_P(SeededTest, McuNeverInflatesDivergentAccessCount)
{
    AddressMap map(true, 32);
    Mcu mcu(map);
    std::vector<MemAccess> out;
    for (int trial = 0; trial < 200; ++trial) {
        int lanes = static_cast<int>(rng_.range(1, 32));
        static isa::StaticInst si;
        si = isa::StaticInst();
        si.op = rng_.chance(0.5) ? isa::Op::Load : isa::Op::Store;
        si.accessSize = 8;
        trace::DynOp op;
        op.si = &si;
        op.accessSize = 8;
        op.addrCount = static_cast<uint8_t>(lanes);
        op.mask = lanes >= 32 ? 0xffffffffu : ((1u << lanes) - 1);
        for (int l = 0; l < lanes; ++l) {
            op.lane[l] = static_cast<uint8_t>(l);
            // Word-aligned heap addresses (no line straddling).
            op.addr[l] = AddressSpace::kPrivateHeapBase +
                (rng_.below(1 << 16)) * 8;
        }
        auto kind = mcu.coalesce(op, out);
        EXPECT_GE(out.size(), 1u);
        EXPECT_LE(out.size(), static_cast<size_t>(lanes))
            << "coalescing must never generate more accesses than "
               "lanes for aligned word accesses (kind "
            << static_cast<int>(kind) << ")";
        for (const auto &a : out)
            EXPECT_EQ(a.paddr % 32, 0u) << "line-aligned outputs";
    }
    EXPECT_GE(mcu.stats().reductionFactor(), 1.0);
}

TEST_P(SeededTest, StackMapBijectiveOnRandomSamples)
{
    AddressMap map(true, 32);
    std::map<Addr, Addr> forward;
    for (int i = 0; i < 5000; ++i) {
        uint64_t lane = rng_.below(32);
        Addr off = rng_.below(AddressSpace::kStackSize);
        Addr va = AddressSpace::stackSegmentBase(lane) + off;
        Addr pa = map.toPhysical(va);
        auto [it, fresh] = forward.emplace(va, pa);
        if (!fresh) {
            EXPECT_EQ(it->second, pa) << "mapping is a function";
        }
        // Physical image stays within the batch's stack area.
        EXPECT_GE(pa, AddressSpace::kStackBase);
        EXPECT_LT(pa, AddressSpace::kStackBase +
                          32 * AddressSpace::kStackSize);
    }
    // Injectivity across the sample.
    std::set<Addr> images;
    for (const auto &[va, pa] : forward)
        images.insert(pa);
    EXPECT_EQ(images.size(), forward.size());
}

TEST_P(SeededTest, RunningStatMatchesDirectComputation)
{
    RunningStat s;
    std::vector<double> xs;
    int n = static_cast<int>(rng_.range(2, 300));
    for (int i = 0; i < n; ++i) {
        double x = rng_.normal(10.0, 4.0);
        xs.push_back(x);
        s.add(x);
    }
    double mean = 0;
    for (double x : xs)
        mean += x / xs.size();
    double var = 0;
    for (double x : xs)
        var += (x - mean) * (x - mean) / (xs.size() - 1);
    EXPECT_NEAR(s.mean(), mean, 1e-9);
    EXPECT_NEAR(s.variance(), var, 1e-6);
}

TEST_P(SeededTest, DramDelayMonotoneInBurstSize)
{
    double prev = -1;
    for (int burst : {1, 4, 16, 64}) {
        Dram d({2, 1.0, 100, 32});
        uint32_t worst = 0;
        for (int i = 0; i < burst; ++i)
            worst = std::max(worst,
                             d.access(0, rng_.below(1 << 20) * 32));
        EXPECT_GE(static_cast<double>(worst), prev);
        prev = worst;
    }
}

TEST_P(SeededTest, BatchingConservesAndBoundsEveryPolicy)
{
    int n = static_cast<int>(rng_.range(1, 700));
    int bs = static_cast<int>(rng_.range(1, 64));
    std::vector<svc::Request> reqs;
    for (int i = 0; i < n; ++i) {
        svc::Request r;
        r.id = i;
        r.api = static_cast<int>(rng_.below(5));
        r.argLen = 1 + static_cast<int>(rng_.below(32));
        reqs.push_back(r);
    }
    for (auto pol : {batch::Policy::Naive, batch::Policy::PerApi,
                     batch::Policy::PerApiArgSize}) {
        batch::BatchingServer server(pol, bs);
        auto batches = server.formBatches(reqs);
        std::set<int64_t> ids;
        for (const auto &b : batches) {
            EXPECT_GE(b.size(), 1);
            EXPECT_LE(b.size(), bs);
            for (const auto &r : b.requests)
                EXPECT_TRUE(ids.insert(r.id).second);
        }
        EXPECT_EQ(static_cast<int>(ids.size()), n);
    }
}

TEST_P(SeededTest, LockstepEfficiencyBoundedForRandomMixes)
{
    // Random service + random policy: efficiency always in (0, 1] and
    // every request completes.
    const auto &names = svc::serviceNames();
    auto svc = svc::buildService(
        names[rng_.below(names.size())]);
    auto policy = rng_.chance(0.5) ? simt::ReconvPolicy::StackIpdom
                                   : simt::ReconvPolicy::MinSpPc;
    int width = 1 << rng_.range(0, 5);
    int n = static_cast<int>(rng_.range(width, 4 * width));
    auto eff = measureEfficiency(*svc, batch::Policy::Naive, policy,
                                 width, n, GetParam());
    EXPECT_GT(eff.efficiency(), 0.0);
    EXPECT_LE(eff.efficiency(), 1.0 + 1e-12);
    EXPECT_EQ(eff.stats.width, width);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));
