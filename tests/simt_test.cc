/**
 * @file
 * Tests for the lockstep SIMT engines: the Fig. 7 divergence example,
 * reconvergence correctness for both policies, efficiency accounting,
 * and the strongest property we have -- lockstep execution must retire
 * exactly the same per-thread instruction stream as solo execution,
 * for every service and both reconvergence schemes.
 */

#include <gtest/gtest.h>

#include "isa/builder.h"
#include "services/basic_service.h"
#include "services/service.h"
#include "simr/runner.h"
#include "simt/lockstep.h"

using namespace simr;
using namespace simr::isa;
using simt::LockstepEngine;
using simt::ReconvPolicy;
using trace::DynOp;
using trace::ThreadInit;

namespace
{

/** Engine over one batch of explicit thread contexts. */
LockstepEngine::BatchProvider
oneBatch(std::vector<ThreadInit> inits)
{
    auto state = std::make_shared<std::vector<ThreadInit>>(
        std::move(inits));
    auto used = std::make_shared<bool>(false);
    return [state, used](std::vector<ThreadInit> &out) -> int {
        if (*used)
            return 0;
        *used = true;
        out = *state;
        return static_cast<int>(out.size());
    };
}

/** The Fig. 7 shape: if (x > 0) BBB else BBC; BBD. */
Program
fig7Program()
{
    ProgramBuilder b("fig7");
    b.beginFunction("main");
    b.nop();  // BBA
    b.ifImm(R_KEY, Cmp::Lt, 2,
            [&] { b.nop(); b.nop(); });  // BBB for keys 0,1
    b.nop();  // BBD
    b.ret();
    b.endFunction();
    return b.finish();
}

uint64_t
drain(LockstepEngine &e, std::vector<DynOp> *ops = nullptr)
{
    DynOp op;
    uint64_t n = 0;
    while (e.next(op)) {
        ++n;
        if (ops)
            ops->push_back(op);
    }
    return n;
}

} // namespace

TEST(Lockstep, UniformBatchFullMask)
{
    Program p = fig7Program();
    std::vector<ThreadInit> inits(4);
    for (int i = 0; i < 4; ++i) {
        inits[static_cast<size_t>(i)].key = 0;  // all take the branch
        inits[static_cast<size_t>(i)].tid = i;
    }
    LockstepEngine e(p, ReconvPolicy::MinSpPc, 4, oneBatch(inits));
    std::vector<DynOp> ops;
    drain(e, &ops);
    for (const auto &op : ops)
        EXPECT_EQ(op.mask, 0xfu) << "uniform batch must stay converged";
    EXPECT_DOUBLE_EQ(e.stats().efficiency(), 1.0);
}

class LockstepPolicyTest
    : public ::testing::TestWithParam<ReconvPolicy>
{
};

TEST_P(LockstepPolicyTest, Fig7DivergenceAndReconvergence)
{
    Program p = fig7Program();
    // Keys 0,1 take the if-arm; keys 2,3 skip it (divergent 2+2).
    std::vector<ThreadInit> inits(4);
    for (int i = 0; i < 4; ++i) {
        inits[static_cast<size_t>(i)].key = i;
        inits[static_cast<size_t>(i)].tid = i;
        inits[static_cast<size_t>(i)].reqId = i;
    }
    LockstepEngine e(p, GetParam(), 4, oneBatch(inits));
    std::vector<DynOp> ops;
    drain(e, &ops);

    // The branch diverged exactly once.
    EXPECT_EQ(e.stats().divergeEvents, 1u);

    // The two nops of the if-arm execute with a half mask.
    int partial = 0;
    for (const auto &op : ops)
        if (op.mask != 0xfu)
            ++partial;
    EXPECT_GE(partial, 2);

    // The final nop + ret execute reconverged with the full mask.
    ASSERT_GE(ops.size(), 2u);
    EXPECT_EQ(ops.back().mask, 0xfu) << "must reconverge before ret";
    EXPECT_EQ(ops.back().endMask, 0xfu);

    // Every thread retires its own stream. Not-taken path: nop, movImm,
    // branch, nop, ret = 5 ops; taken adds 2 nops + the arm's jump.
    EXPECT_EQ(e.stats().scalarOps, 4u * 5u + 2u * 3u);
    EXPECT_EQ(e.requestsCompleted(), 4u);
}

INSTANTIATE_TEST_SUITE_P(BothPolicies, LockstepPolicyTest,
                         ::testing::Values(ReconvPolicy::StackIpdom,
                                           ReconvPolicy::MinSpPc));

TEST(Lockstep, EfficiencyHalvedByDisjointPaths)
{
    // Two APIs with identical long bodies: a 50/50 mixed batch can at
    // best achieve ~50% efficiency.
    ProgramBuilder b("t");
    b.beginFunction("main");
    b.apiSwitch({
        [&] { for (int i = 0; i < 40; ++i) b.nop(); },
        [&] { for (int i = 0; i < 40; ++i) b.nop(); },
    });
    b.ret();
    b.endFunction();
    Program p = b.finish();

    std::vector<ThreadInit> inits(8);
    for (int i = 0; i < 8; ++i) {
        inits[static_cast<size_t>(i)].api = i % 2;
        inits[static_cast<size_t>(i)].tid = i;
        inits[static_cast<size_t>(i)].reqId = i;
    }
    LockstepEngine e(p, ReconvPolicy::MinSpPc, 8, oneBatch(inits));
    drain(e);
    EXPECT_LT(e.stats().efficiency(), 0.62);
    EXPECT_GT(e.stats().efficiency(), 0.40);
}

TEST(Lockstep, DivergentLoopTripsReconverge)
{
    // Threads loop argLen times; all must finish and efficiency must
    // reflect the masked tail iterations.
    ProgramBuilder b("t");
    b.beginFunction("main");
    b.forLoop(R_T0, R_ARGLEN, [&] { b.nop(); b.nop(); });
    b.movImm(R_T1, 7);
    b.ret();
    b.endFunction();
    Program p = b.finish();

    std::vector<ThreadInit> inits(4);
    for (int i = 0; i < 4; ++i) {
        inits[static_cast<size_t>(i)].argLen = 1 + 3 * i;  // 1,4,7,10
        inits[static_cast<size_t>(i)].tid = i;
        inits[static_cast<size_t>(i)].reqId = i;
    }
    LockstepEngine e(p, ReconvPolicy::MinSpPc, 4, oneBatch(inits));
    std::vector<DynOp> ops;
    drain(e, &ops);
    EXPECT_EQ(e.requestsCompleted(), 4u);
    EXPECT_EQ(ops.back().mask, 0xfu) << "post-loop code reconverges";
    EXPECT_LT(e.stats().efficiency(), 1.0);
}

TEST(Lockstep, PartialBatchWidthAccounting)
{
    Program p = fig7Program();
    std::vector<ThreadInit> inits(3);  // batch of 3 in a width-8 engine
    for (int i = 0; i < 3; ++i) {
        inits[static_cast<size_t>(i)].key = 5;
        inits[static_cast<size_t>(i)].tid = i;
    }
    LockstepEngine e(p, ReconvPolicy::MinSpPc, 8, oneBatch(inits));
    drain(e);
    // 3 of 8 lanes active on every op.
    EXPECT_NEAR(e.stats().efficiency(), 3.0 / 8.0, 1e-9);
}

TEST(Lockstep, SoloEquivalenceToyProgram)
{
    Program p = fig7Program();

    // Solo execution per thread.
    uint64_t solo_total = 0;
    for (int i = 0; i < 4; ++i) {
        trace::ThreadState t(p);
        ThreadInit init;
        init.key = i;
        init.reqId = i;
        t.reset(init);
        trace::StepResult r;
        while (!t.done())
            t.step(r);
        solo_total += t.dynCount();
    }

    for (auto policy : {ReconvPolicy::StackIpdom, ReconvPolicy::MinSpPc}) {
        std::vector<ThreadInit> inits(4);
        for (int i = 0; i < 4; ++i) {
            inits[static_cast<size_t>(i)].key = i;
            inits[static_cast<size_t>(i)].tid = i;
            inits[static_cast<size_t>(i)].reqId = i;
        }
        LockstepEngine e(p, policy, 4, oneBatch(inits));
        drain(e);
        EXPECT_EQ(e.stats().scalarOps, solo_total)
            << "lockstep must retire exactly the solo streams";
    }
}

/**
 * The heavyweight equivalence property, parameterized over every
 * microservice and both reconvergence policies: batched execution
 * retires exactly as many per-thread instructions as solo execution of
 * the same requests, and completes every request.
 */
class ServiceEquivalenceTest
    : public ::testing::TestWithParam<
          std::tuple<std::string, ReconvPolicy>>
{
};

TEST_P(ServiceEquivalenceTest, LockstepMatchesSolo)
{
    const auto &[name, policy] = GetParam();
    auto svc = svc::buildService(name);
    ASSERT_NE(svc, nullptr);
    const int n = 96;

    auto reqs = genRequests(*svc, n, 7);
    mem::HeapAllocator alloc(mem::AllocPolicy::SimrAware);

    // Form the batches first so the solo run uses exactly the same
    // request-to-lane assignment (addresses depend on the lane slot,
    // and some services branch on loaded, address-derived values).
    batch::BatchingServer server(batch::Policy::PerApiArgSize, 32);
    auto batches = server.formBatches(reqs);

    uint64_t solo_total = 0;
    for (const auto &b : batches) {
        for (size_t lane = 0; lane < b.requests.size(); ++lane) {
            trace::ThreadState t(svc->program());
            t.reset(svc::makeThreadInit(*svc, b.requests[lane],
                                        static_cast<int>(lane), lane,
                                        alloc));
            trace::StepResult r;
            while (!t.done())
                t.step(r);
            solo_total += t.dynCount();
        }
    }

    LockstepEngine e(svc->program(), policy, 32,
                     makeBatchProvider(*svc, std::move(batches)));
    drain(e);

    EXPECT_EQ(e.requestsCompleted(), static_cast<uint64_t>(n));
    EXPECT_EQ(e.stats().scalarOps, solo_total)
        << "lockstep must retire exactly the solo per-thread streams";
}

INSTANTIATE_TEST_SUITE_P(
    AllServices, ServiceEquivalenceTest,
    ::testing::Combine(::testing::ValuesIn(svc::serviceNames()),
                       ::testing::Values(ReconvPolicy::StackIpdom,
                                         ReconvPolicy::MinSpPc)),
    [](const auto &info) {
        std::string n = std::get<0>(info.param);
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n + (std::get<1>(info.param) == ReconvPolicy::StackIpdom ?
                    "_stack" : "_minsp");
    });

TEST(Lockstep, BatchBoundaryAndBatchStart)
{
    Program p = fig7Program();
    auto svc_like = [&](int batches_wanted) {
        auto count = std::make_shared<int>(0);
        int total = batches_wanted;
        return [count, total](std::vector<ThreadInit> &out) -> int {
            if (*count >= total)
                return 0;
            ++*count;
            out.assign(2, ThreadInit());
            out[0].tid = 0;
            out[1].tid = 1;
            out[0].reqId = *count * 2;
            out[1].reqId = *count * 2 + 1;
            return 2;
        };
    };
    LockstepEngine e(p, ReconvPolicy::MinSpPc, 2, svc_like(3));
    DynOp op;
    int starts = 0;
    while (e.next(op))
        starts += op.batchStart ? 1 : 0;
    EXPECT_EQ(starts, 3);
    EXPECT_EQ(e.stats().batches, 3u);
    EXPECT_EQ(e.requestsCompleted(), 6u);
}

TEST(Lockstep, MajorityOutcomeInTakenMask)
{
    ProgramBuilder b("t");
    b.beginFunction("main");
    b.ifImm(R_KEY, Cmp::Lt, 3, [&] { b.nop(); });
    b.ret();
    b.endFunction();
    Program p = b.finish();

    std::vector<ThreadInit> inits(4);
    for (int i = 0; i < 4; ++i) {
        inits[static_cast<size_t>(i)].key = i;  // 3 take, 1 doesn't
        inits[static_cast<size_t>(i)].tid = i;
    }
    LockstepEngine e(p, ReconvPolicy::MinSpPc, 4, oneBatch(inits));
    DynOp op;
    bool saw_branch = false;
    while (e.next(op)) {
        if (op.isBranch() && op.takenMask != 0 &&
            op.takenMask != op.mask) {
            saw_branch = true;
            EXPECT_EQ(trace::popcount(op.takenMask), 3);
        }
    }
    EXPECT_TRUE(saw_branch);
}

TEST(SimtStats, AccumulateAdoptsWidthOnlyWhenEmpty)
{
    // An empty (default) accumulator adopts the width of the first
    // stats merged in, so efficiency() over a sweep of 8-wide engines
    // does not silently divide by the 32-wide default.
    simt::SimtStats eight;
    eight.width = 8;
    eight.batches = 3;
    eight.batchOps = 100;
    eight.scalarOps = 640;

    simt::SimtStats acc;
    acc += eight;
    EXPECT_EQ(acc.width, 8);
    EXPECT_EQ(acc.batches, 3u);
    EXPECT_EQ(acc.batchOps, 100u);

    // A populated accumulator keeps its own width even when merging
    // stats of a different (or default) width.
    simt::SimtStats other;
    other.width = 32;
    other.batches = 1;
    other.batchOps = 10;
    acc += other;
    EXPECT_EQ(acc.width, 8);
    EXPECT_EQ(acc.batches, 4u);
    EXPECT_EQ(acc.batchOps, 110u);
}

TEST(SimtStats, AccumulateEmptyCases)
{
    // empty += empty: still "empty", width stays usable (the default).
    simt::SimtStats a, b;
    a += b;
    EXPECT_EQ(a.width, 32);
    EXPECT_EQ(a.batches, 0u);
    EXPECT_DOUBLE_EQ(a.efficiency(), 1.0);

    // populated += empty: nothing changes, width kept.
    simt::SimtStats pop;
    pop.width = 8;
    pop.batches = 2;
    pop.batchOps = 16;
    pop.scalarOps = 128;
    simt::SimtStats empty;
    pop += empty;
    EXPECT_EQ(pop.width, 8);
    EXPECT_EQ(pop.batches, 2u);
    EXPECT_DOUBLE_EQ(pop.efficiency(), 1.0);
}
