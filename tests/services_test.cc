/**
 * @file
 * Parameterized tests over all 14 microservices: program validity,
 * request-model bounds, termination, determinism, segment usage and
 * service-specific behaviours the figures rely on.
 */

#include <gtest/gtest.h>

#include <set>

#include "mem/address_space.h"
#include "services/service.h"
#include "simr/runner.h"

using namespace simr;

namespace
{

std::string
ident(const std::string &name)
{
    std::string n = name;
    for (auto &c : n)
        if (c == '-')
            c = '_';
    return n;
}

} // namespace

TEST(Registry, FourteenServicesInFigureOrder)
{
    EXPECT_EQ(svc::serviceNames().size(), 14u);
    auto all = svc::buildAllServices();
    ASSERT_EQ(all.size(), 14u);
    for (size_t i = 0; i < all.size(); ++i)
        EXPECT_EQ(all[i]->traits().name, svc::serviceNames()[i]);
    EXPECT_EQ(svc::buildService("no-such-service"), nullptr);
}

class ServiceTest : public ::testing::TestWithParam<std::string>
{
  protected:
    void
    SetUp() override
    {
        svc_ = svc::buildService(GetParam());
        ASSERT_NE(svc_, nullptr);
    }

    std::unique_ptr<svc::Service> svc_;
};

TEST_P(ServiceTest, ProgramIsLaidOutWithMain)
{
    const auto &p = svc_->program();
    EXPECT_TRUE(p.laidOut());
    EXPECT_GE(p.findFunction("main"), 0);
    EXPECT_GT(p.staticInstCount(), 10u);
}

TEST_P(ServiceTest, RequestsRespectTraits)
{
    Rng rng(5);
    const auto &t = svc_->traits();
    for (int i = 0; i < 500; ++i) {
        auto r = svc_->genRequest(i, rng);
        EXPECT_GE(r.api, 0);
        EXPECT_LT(r.api, t.numApis);
        EXPECT_GE(r.argLen, 1);
        EXPECT_LE(r.argLen, t.maxArgLen);
        EXPECT_EQ(r.id, i);
    }
}

TEST_P(ServiceTest, AllApisAreReachable)
{
    Rng rng(7);
    std::set<int> apis;
    for (int i = 0; i < 2000; ++i)
        apis.insert(svc_->genRequest(i, rng).api);
    EXPECT_EQ(static_cast<int>(apis.size()), svc_->traits().numApis);
}

TEST_P(ServiceTest, EveryRequestTerminates)
{
    Rng rng(9);
    mem::HeapAllocator alloc(mem::AllocPolicy::SimrAware);
    trace::ThreadState t(svc_->program());
    for (int i = 0; i < 50; ++i) {
        auto req = svc_->genRequest(i, rng);
        t.reset(svc::makeThreadInit(*svc_, req, i % 32,
                                    static_cast<uint64_t>(i % 32), alloc));
        trace::StepResult r;
        uint64_t guard = 200000;
        while (!t.done() && guard-- > 0)
            t.step(r);
        ASSERT_TRUE(t.done()) << "request " << i << " did not terminate";
        EXPECT_GT(t.dynCount(), 20u) << "requests do non-trivial work";
        EXPECT_LT(t.dynCount(), 100000u);
    }
}

TEST_P(ServiceTest, ExecutionIsDeterministic)
{
    Rng rng(11);
    mem::HeapAllocator alloc(mem::AllocPolicy::GlibcLike);
    auto req = svc_->genRequest(0, rng);
    uint64_t counts[2];
    for (int pass = 0; pass < 2; ++pass) {
        trace::ThreadState t(svc_->program());
        t.reset(svc::makeThreadInit(*svc_, req, 3, 3, alloc));
        trace::StepResult r;
        while (!t.done())
            t.step(r);
        counts[pass] = t.dynCount();
    }
    EXPECT_EQ(counts[0], counts[1]);
}

TEST_P(ServiceTest, TouchesStackAndIssuesSyscalls)
{
    Rng rng(13);
    mem::HeapAllocator alloc(mem::AllocPolicy::SimrAware);
    auto req = svc_->genRequest(0, rng);
    trace::ThreadState t(svc_->program());
    t.reset(svc::makeThreadInit(*svc_, req, 0, 0, alloc));
    trace::StepResult r;
    bool stack = false;
    int syscalls = 0;
    while (!t.done()) {
        t.step(r);
        if (isa::opInfo(r.si->op).isMem &&
            mem::AddressSpace::classify(r.addr) == mem::Segment::Stack)
            stack = true;
        syscalls += r.si->op == isa::Op::Syscall ? 1 : 0;
    }
    EXPECT_TRUE(stack) << "every service uses its stack";
    EXPECT_GE(syscalls, 2) << "RPC boundary syscalls present";
}

TEST_P(ServiceTest, MemoryStaysInKnownSegments)
{
    Rng rng(17);
    mem::HeapAllocator alloc(mem::AllocPolicy::SimrAware);
    trace::ThreadState t(svc_->program());
    for (int i = 0; i < 8; ++i) {
        auto req = svc_->genRequest(i, rng);
        t.reset(svc::makeThreadInit(*svc_, req, i % 32,
                                    static_cast<uint64_t>(i % 32), alloc));
        trace::StepResult r;
        while (!t.done()) {
            t.step(r);
            if (!isa::opInfo(r.si->op).isMem)
                continue;
            auto seg = mem::AddressSpace::classify(r.addr);
            EXPECT_NE(seg, mem::Segment::Other)
                << "stray address 0x" << std::hex << r.addr;
            EXPECT_NE(seg, mem::Segment::Code);
        }
    }
}

TEST_P(ServiceTest, TunedBatchMatchesDataIntensity)
{
    const auto &t = svc_->traits();
    if (t.dataIntensive)
        EXPECT_LT(t.tunedBatch, 32) << "Fig. 15 batch tuning";
    else
        EXPECT_EQ(t.tunedBatch, 32);
}

INSTANTIATE_TEST_SUITE_P(AllServices, ServiceTest,
                         ::testing::ValuesIn(svc::serviceNames()),
                         [](const auto &info) { return ident(info.param); });

TEST(ServiceBehaviour, ArgLenScalesWork)
{
    auto svc = svc::buildService("text");
    mem::HeapAllocator alloc(mem::AllocPolicy::SimrAware);
    uint64_t counts[2];
    int lens[2] = {2, 20};
    for (int i = 0; i < 2; ++i) {
        svc::Request r;
        r.api = 0;
        r.argLen = lens[i];
        r.key = 42;
        trace::ThreadState t(svc->program());
        t.reset(svc::makeThreadInit(*svc, r, 0, 0, alloc));
        trace::StepResult sr;
        while (!t.done())
            t.step(sr);
        counts[i] = t.dynCount();
    }
    EXPECT_GT(counts[1], counts[0] + 100)
        << "longer texts do proportionally more work";
}

TEST(ServiceBehaviour, PostApisHaveDistinctLengths)
{
    auto svc = svc::buildService("post");
    mem::HeapAllocator alloc(mem::AllocPolicy::SimrAware);
    std::set<uint64_t> lengths;
    for (int api = 0; api < 4; ++api) {
        svc::Request r;
        r.api = api;
        r.argLen = 2;
        r.key = 7;
        trace::ThreadState t(svc->program());
        t.reset(svc::makeThreadInit(*svc, r, 0, 0, alloc));
        trace::StepResult sr;
        while (!t.done())
            t.step(sr);
        lengths.insert(t.dynCount());
    }
    EXPECT_EQ(lengths.size(), 4u) << "each RPC method is distinct code";
}

TEST(ServiceBehaviour, LeafFootprintExceedsMidTier)
{
    // The data-intensive leaves touch far more private-heap bytes than
    // a stack-heavy middle tier (Fig. 15 premise).
    auto leaf = svc::buildService("hdsearch-leaf");
    auto mid = svc::buildService("post");
    mem::HeapAllocator alloc(mem::AllocPolicy::SimrAware);
    auto heap_lines = [&](svc::Service &s) {
        Rng rng(3);
        auto req = s.genRequest(0, rng);
        trace::ThreadState t(s.program());
        t.reset(svc::makeThreadInit(s, req, 0, 0, alloc));
        trace::StepResult r;
        std::set<uint64_t> lines;
        while (!t.done()) {
            t.step(r);
            if (isa::opInfo(r.si->op).isMem &&
                mem::AddressSpace::classify(r.addr) ==
                    mem::Segment::PrivateHeap)
                lines.insert(r.addr / 32);
        }
        return lines.size();
    };
    EXPECT_GT(heap_lines(*leaf), 8 * heap_lines(*mid) + 32);
}
