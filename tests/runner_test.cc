/**
 * @file
 * Tests for the experiment-runner facade: request generation, SIMT
 * efficiency measurement (the Fig. 4 / Fig. 11 machinery), timing runs
 * and the cache studies (Figs. 14 / 15).
 */

#include <gtest/gtest.h>

#include "simr/cachestudy.h"
#include "simr/runner.h"
#include "simr/tuner.h"

using namespace simr;

TEST(Runner, GenRequestsDeterministic)
{
    auto svc = svc::buildService("memc");
    auto a = genRequests(*svc, 100, 5);
    auto b = genRequests(*svc, 100, 5);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].api, b[i].api);
        EXPECT_EQ(a[i].key, b[i].key);
        EXPECT_EQ(a[i].argLen, b[i].argLen);
    }
    auto c = genRequests(*svc, 100, 6);
    bool differs = false;
    for (size_t i = 0; i < a.size(); ++i)
        differs = differs || a[i].key != c[i].key;
    EXPECT_TRUE(differs);
}

TEST(Runner, EfficiencyBounds)
{
    auto svc = svc::buildService("post");
    for (auto policy : {batch::Policy::Naive, batch::Policy::PerApi,
                        batch::Policy::PerApiArgSize}) {
        auto r = measureEfficiency(*svc, policy,
                                   simt::ReconvPolicy::MinSpPc, 32, 320,
                                   5);
        EXPECT_GT(r.efficiency(), 0.0);
        EXPECT_LE(r.efficiency(), 1.0);
    }
}

TEST(Runner, BatchingPoliciesImproveMultiApiService)
{
    auto svc = svc::buildService("post");
    auto naive = measureEfficiency(*svc, batch::Policy::Naive,
                                   simt::ReconvPolicy::MinSpPc, 32, 640,
                                   5);
    auto api = measureEfficiency(*svc, batch::Policy::PerApi,
                                 simt::ReconvPolicy::MinSpPc, 32, 640, 5);
    EXPECT_GT(api.efficiency(), 2.0 * naive.efficiency())
        << "Fig. 11: per-API batching is a large win on Post";
}

TEST(Runner, ArgSizeBatchingImprovesLengthDivergentService)
{
    auto svc = svc::buildService("search-leaf");
    auto api = measureEfficiency(*svc, batch::Policy::PerApi,
                                 simt::ReconvPolicy::MinSpPc, 32, 640, 5);
    auto arg = measureEfficiency(*svc, batch::Policy::PerApiArgSize,
                                 simt::ReconvPolicy::MinSpPc, 32, 640, 5);
    EXPECT_GT(arg.efficiency(), 1.5 * api.efficiency())
        << "Fig. 11: argument-size batching fixes loop divergence";
}

TEST(Runner, UniqueIdNearPerfectEfficiency)
{
    auto svc = svc::buildService("uniqueid");
    auto r = measureEfficiency(*svc, batch::Policy::Naive,
                               simt::ReconvPolicy::MinSpPc, 32, 320, 5);
    EXPECT_GT(r.efficiency(), 0.97);
}

TEST(Runner, StackVsMinSpClose)
{
    // Paper: MinSP-PC lands within ~1-2% of ideal stack-based IPDOM.
    auto svc = svc::buildService("user");
    auto ideal = measureEfficiency(*svc, batch::Policy::PerApiArgSize,
                                   simt::ReconvPolicy::StackIpdom, 32,
                                   640, 5);
    auto heur = measureEfficiency(*svc, batch::Policy::PerApiArgSize,
                                  simt::ReconvPolicy::MinSpPc, 32, 640,
                                  5);
    EXPECT_NEAR(heur.efficiency(), ideal.efficiency(), 0.05);
}

TEST(Runner, TimingRunEnergyPositive)
{
    auto svc = svc::buildService("urlshort");
    TimingOptions opt;
    opt.requests = 48;
    auto run = runTiming(*svc, core::makeCpuConfig(), opt);
    EXPECT_GT(run.energy.total(), 0.0);
    EXPECT_GT(run.reqPerJoule(), 0.0);
}

TEST(Runner, RpuBeatsCpuOnRequestsPerJoule)
{
    auto svc = svc::buildService("post");
    TimingOptions opt;
    opt.requests = 256;
    auto cpu = runTiming(*svc, core::makeCpuConfig(), opt);
    auto rpu = runTiming(*svc, core::makeRpuConfig(), opt);
    EXPECT_GT(rpu.reqPerJoule(), 2.0 * cpu.reqPerJoule())
        << "the headline result, conservatively bounded";
}

TEST(Runner, RpuLatencyWithinQosEnvelope)
{
    auto svc = svc::buildService("user");
    TimingOptions opt;
    opt.requests = 512;
    auto cpu = runTiming(*svc, core::makeCpuConfig(), opt);
    auto rpu = runTiming(*svc, core::makeRpuConfig(), opt);
    double ratio = rpu.core.meanLatencyUs() / cpu.core.meanLatencyUs();
    EXPECT_LT(ratio, 2.5) << "service latency must stay near the 2x bar";
}

TEST(Runner, BatchOverrideRespected)
{
    auto svc = svc::buildService("memc");
    TimingOptions opt;
    opt.requests = 64;
    opt.batchOverride = 8;
    auto run = runTiming(*svc, core::makeRpuConfig(), opt);
    EXPECT_EQ(run.core.requests, 64u);
    // 8-wide batches: ops carry at most 8 active lanes.
    EXPECT_LE(run.core.scalarInsts, run.core.batchOps * 8);
}

TEST(Runner, TunedBatchUsedForLeaves)
{
    auto svc = svc::buildService("hdsearch-leaf");
    TimingOptions opt;
    opt.requests = 64;
    auto run = runTiming(*svc, core::makeRpuConfig(), opt);
    EXPECT_LE(run.core.scalarInsts, run.core.batchOps * 8)
        << "hdsearch-leaf runs at its tuned batch of 8";
}

TEST(CacheStudy, RpuGeneratesFewerAccessesOnStackHeavyService)
{
    auto svc = svc::buildService("post");
    CacheStudyOptions opt;
    opt.requests = 256;
    auto cpu = studyCpuCache(*svc, opt);
    auto rpu = studyRpuCache(*svc, 32, opt);
    EXPECT_LT(rpu.l1Accesses * 3, cpu.l1Accesses)
        << "Fig. 14: stack coalescing cuts traffic";
    EXPECT_EQ(cpu.mcu.batchMemInsts, cpu.laneAccesses)
        << "scalar study: one lane per op";
}

TEST(CacheStudy, LeafThrashesAt32RecoversAt8)
{
    auto svc = svc::buildService("hdsearch-leaf");
    CacheStudyOptions opt;
    opt.requests = 256;
    opt.l1KB = 256;
    auto wide = studyRpuCache(*svc, 32, opt);
    auto narrow = studyRpuCache(*svc, 8, opt);
    EXPECT_GT(wide.mpki(), 5.0 * narrow.mpki())
        << "Fig. 15: the batch-tuning rule";
}

TEST(CacheStudy, ScalarInstsMatchBetweenStudies)
{
    auto svc = svc::buildService("mcrouter");
    CacheStudyOptions opt;
    opt.requests = 128;
    auto cpu = studyCpuCache(*svc, opt);
    auto rpu = studyRpuCache(*svc, 32, opt);
    // Same requests, same per-thread work (different slot addresses
    // may shift data-dependent paths by a small margin only).
    double diff = std::abs(static_cast<double>(cpu.scalarInsts) -
                           static_cast<double>(rpu.scalarInsts));
    EXPECT_LT(diff, 0.05 * static_cast<double>(cpu.scalarInsts));
}

TEST(Tuner, RederivesFig15Rule)
{
    // The offline tuner must pick small batches for the data-intensive
    // leaves and the full batch for a stack-heavy middle tier.
    tune::TunerConfig cfg;
    cfg.profileRequests = 512;
    auto leaf = tune::tuneBatchSize(*svc::buildService("hdsearch-leaf"),
                                    cfg);
    auto mid = tune::tuneBatchSize(*svc::buildService("post"), cfg);
    // The leaf must not run at the thrashing batch of 32 (Fig. 15);
    // the tuner may legitimately land one step above the paper's
    // hand-picked 8 when the footprint still fits.
    EXPECT_LT(leaf.chosenBatch, 32);
    EXPECT_EQ(mid.chosenBatch, 32);
    EXPECT_EQ(leaf.points.size(), cfg.candidates.size());
}

TEST(Tuner, FallsBackToSmallestWhenNothingFits)
{
    tune::TunerConfig cfg;
    cfg.profileRequests = 128;
    cfg.thrashFactor = 0.0;
    cfg.mpkiSlack = -1.0;  // nothing is acceptable
    auto r = tune::tuneBatchSize(*svc::buildService("memc"), cfg);
    EXPECT_EQ(r.chosenBatch, 4);
    for (const auto &p : r.points)
        EXPECT_FALSE(p.acceptable);
}

TEST(GpgpuExtension, SpmdKernelIsSimtPerfect)
{
    auto svc = svc::buildService("gpgpu-saxpy");
    ASSERT_NE(svc, nullptr);
    auto eff = measureEfficiency(*svc, batch::Policy::PerApiArgSize,
                                 simt::ReconvPolicy::MinSpPc, 32, 320,
                                 5);
    EXPECT_GT(eff.efficiency(), 0.97);
}
