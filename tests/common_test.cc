/**
 * @file
 * Unit tests for the common utilities: RNG, statistics, tables, config.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>

#include "common/config.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

using namespace simr;

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = r.range(3, 6);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 6);
        saw_lo = saw_lo || v == 3;
        saw_hi = saw_hi || v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, RangeDegenerate)
{
    Rng r(7);
    EXPECT_EQ(r.range(5, 5), 5);
    EXPECT_EQ(r.range(9, 2), 9);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceProbability)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ExponentialMean)
{
    Rng r(17);
    double sum = 0;
    for (int i = 0; i < 20000; ++i)
        sum += r.exponential(50.0);
    EXPECT_NEAR(sum / 20000.0, 50.0, 2.5);
}

TEST(Rng, ZipfBounded)
{
    Rng r(19);
    for (int i = 0; i < 5000; ++i)
        EXPECT_LT(r.zipf(100, 0.9), 100u);
}

TEST(Rng, ZipfSkewed)
{
    // Heavier skew concentrates more mass on low ranks.
    Rng r(23);
    int low_heavy = 0, low_flat = 0;
    for (int i = 0; i < 5000; ++i) {
        low_heavy += r.zipf(1000, 1.2) < 10 ? 1 : 0;
        low_flat += r.zipf(1000, 0.3) < 10 ? 1 : 0;
    }
    EXPECT_GT(low_heavy, low_flat);
}

TEST(Rng, ZipfSingleItem)
{
    Rng r(29);
    EXPECT_EQ(r.zipf(1, 0.9), 0u);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng r(31);
    std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    r.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Mix64, DeterministicAndSpread)
{
    EXPECT_EQ(mix64(42), mix64(42));
    std::set<uint64_t> outs;
    for (uint64_t i = 0; i < 1000; ++i)
        outs.insert(mix64(i));
    EXPECT_EQ(outs.size(), 1000u);
}

TEST(RunningStat, Basics)
{
    RunningStat s;
    for (double x : {1.0, 2.0, 3.0, 4.0})
        s.add(x);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
    EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-9);
}

TEST(RunningStat, Empty)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MergeMatchesCombined)
{
    RunningStat a, b, all;
    Rng r(37);
    for (int i = 0; i < 100; ++i) {
        double x = r.uniform() * 10;
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Histogram, Percentiles)
{
    Histogram h;
    for (int i = 1; i <= 100; ++i)
        h.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 100.0);
    EXPECT_NEAR(h.percentile(0.5), 50.5, 0.01);
    EXPECT_NEAR(h.percentile(0.99), 99.01, 0.05);
}

TEST(Histogram, AddAfterPercentile)
{
    Histogram h;
    h.add(5);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 5.0);
    h.add(100);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 100.0);
}

TEST(Histogram, EmptyIsZero)
{
    Histogram h;
    EXPECT_EQ(h.percentile(0.5), 0.0);
    EXPECT_EQ(h.count(), 0u);
    // Every percentile of an empty histogram is 0, including the
    // endpoints and out-of-range ranks.
    EXPECT_EQ(h.percentile(0.0), 0.0);
    EXPECT_EQ(h.percentile(1.0), 0.0);
    EXPECT_EQ(h.percentile(-1.0), 0.0);
    EXPECT_EQ(h.percentile(2.0), 0.0);
}

TEST(Histogram, SingleSampleEveryPercentile)
{
    Histogram h;
    h.add(42.0);
    for (double p : {0.0, 0.01, 0.5, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(h.percentile(p), 42.0) << "p=" << p;
}

TEST(Histogram, PercentileEdgeRanksClamp)
{
    Histogram h;
    for (double x : {10.0, 20.0, 30.0, 40.0})
        h.add(x);
    // p <= 0 is the minimum, p >= 1 the maximum -- including ranks
    // outside [0, 1] and NaN (treated as rank 0).
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(-0.5), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 40.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.5), 40.0);
    EXPECT_DOUBLE_EQ(h.percentile(std::nan("")), 10.0);
}

TEST(Histogram, PercentileInterpolationLocked)
{
    // Regression lock on the interpolation scheme (R-7, the linear
    // rank estimator): for {10,20,30,40}, rank h = p*(n-1) and the
    // result interpolates between floor(h) and floor(h)+1.
    Histogram h;
    for (double x : {10.0, 20.0, 30.0, 40.0})
        h.add(x);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 25.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.25), 17.5);
    EXPECT_DOUBLE_EQ(h.percentile(0.75), 32.5);
    EXPECT_DOUBLE_EQ(h.percentile(1.0 / 3.0), 20.0);
}

TEST(Histogram, MergeMatchesCombined)
{
    Histogram a, b, all;
    Rng r(91);
    for (int i = 0; i < 200; ++i) {
        double x = r.uniform() * 100;
        (i % 3 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    for (double p : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(a.percentile(p), all.percentile(p))
            << "p=" << p;
}

TEST(Histogram, MergeAfterPercentileResorts)
{
    Histogram a, b;
    a.add(30.0);
    a.add(10.0);
    EXPECT_DOUBLE_EQ(a.percentile(1.0), 30.0);  // forces the sort
    b.add(20.0);
    b.add(40.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_DOUBLE_EQ(a.percentile(0.5), 25.0);
    EXPECT_DOUBLE_EQ(a.percentile(1.0), 40.0);
}

TEST(CounterSet, AddGetMerge)
{
    CounterSet a, b;
    a.add("x");
    a.add("x", 4);
    b.add("x", 2);
    b.add("y", 7);
    a.merge(b);
    EXPECT_EQ(a.get("x"), 7u);
    EXPECT_EQ(a.get("y"), 7u);
    EXPECT_EQ(a.get("missing"), 0u);
}

TEST(Table, RendersAlignedRows)
{
    Table t("demo");
    t.header({"a", "bb"});
    t.row({"1", "2"});
    t.row({"333", "4"});
    std::string out = t.render();
    EXPECT_NE(out.find("== demo =="), std::string::npos);
    EXPECT_NE(out.find("| 333 | 4  |"), std::string::npos);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(Table::num(1.234, 2), "1.23");
    EXPECT_EQ(Table::mult(5.7), "5.70x");
    EXPECT_EQ(Table::pct(0.921), "92.1%");
}

TEST(Config, EnvFallbacks)
{
    unsetenv("SIMR_TEST_INT");
    EXPECT_EQ(envInt("SIMR_TEST_INT", 42), 42);
    setenv("SIMR_TEST_INT", "17", 1);
    EXPECT_EQ(envInt("SIMR_TEST_INT", 42), 17);
    unsetenv("SIMR_TEST_INT");

    EXPECT_DOUBLE_EQ(envDouble("SIMR_TEST_DBL", 1.5), 1.5);
    EXPECT_EQ(envStr("SIMR_TEST_STR", "dflt"), "dflt");
}

TEST(Config, RunScaleFromEnv)
{
    setenv("SIMR_REQUESTS", "123", 1);
    setenv("SIMR_TIMING_REQUESTS", "45", 1);
    auto s = RunScale::fromEnv();
    EXPECT_EQ(s.requests, 123);
    EXPECT_EQ(s.timingRequests, 45);
    unsetenv("SIMR_REQUESTS");
    unsetenv("SIMR_TIMING_REQUESTS");
}

TEST(Histogram, AddNMatchesRepeatedAdd)
{
    // The commit stage retires multi-request batches through addN; the
    // figures must not shift against the one-add-per-request original.
    Histogram bulk, loop;
    struct { double x; uint64_t n; } batches[] = {
        {12.0, 3}, {4.5, 1}, {90.25, 7}, {4.5, 5}, {0.0, 2},
    };
    for (const auto &b : batches) {
        bulk.addN(b.x, b.n);
        for (uint64_t i = 0; i < b.n; ++i)
            loop.add(b.x);
    }
    EXPECT_EQ(bulk.count(), loop.count());
    EXPECT_DOUBLE_EQ(bulk.mean(), loop.mean());
    EXPECT_DOUBLE_EQ(bulk.min(), loop.min());
    EXPECT_DOUBLE_EQ(bulk.max(), loop.max());
    for (double p : {0.5, 0.9, 0.95, 0.99})
        EXPECT_DOUBLE_EQ(bulk.percentile(p), loop.percentile(p));
}

TEST(Histogram, AddNZeroCountIsNoop)
{
    Histogram h;
    h.addN(7.0, 0);
    EXPECT_EQ(h.count(), 0u);
    h.add(1.0);
    h.addN(3.0, 0);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.max(), 1.0);
}
