/**
 * @file
 * Unit tests for the µISA: opcode metadata, program structure and the
 * layout invariants the SIMT reconvergence engines rely on (join blocks
 * after arms, loop exits after bodies, IPDOM annotations present).
 */

#include <gtest/gtest.h>

#include "isa/builder.h"
#include "isa/program.h"

using namespace simr::isa;

TEST(OpInfo, Classes)
{
    EXPECT_TRUE(opInfo(Op::Load).isMem);
    EXPECT_TRUE(opInfo(Op::Store).isMem);
    EXPECT_TRUE(opInfo(Op::Atomic).isMem);
    EXPECT_FALSE(opInfo(Op::IAlu).isMem);
    EXPECT_TRUE(opInfo(Op::Branch).isCtrl);
    EXPECT_TRUE(opInfo(Op::Jump).isCtrl);
    EXPECT_TRUE(opInfo(Op::Call).isCtrl);
    EXPECT_TRUE(opInfo(Op::Ret).isCtrl);
    EXPECT_FALSE(opInfo(Op::Syscall).isCtrl);
    EXPECT_TRUE(opInfo(Op::IAlu).writesReg);
    EXPECT_FALSE(opInfo(Op::Store).writesReg);
    EXPECT_EQ(opInfo(Op::Simd).fu, FuClass::SimdUnit);
    EXPECT_EQ(opInfo(Op::IMul).fu, FuClass::IntMul);
    EXPECT_EQ(opInfo(Op::Load).fu, FuClass::LoadStore);
}

TEST(OpInfo, Names)
{
    EXPECT_STREQ(opName(Op::Branch), "branch");
    EXPECT_STREQ(opName(Op::Simd), "simd");
}

namespace
{

Program
buildIfElse()
{
    ProgramBuilder b("t");
    b.beginFunction("main");
    b.movImm(R_T0, 1);
    b.ifElse(R_T0, Cmp::Eq, R_ZERO,
             [&] { b.movImm(R_T1, 10); },
             [&] { b.movImm(R_T1, 20); });
    b.movImm(R_T2, 3);
    b.ret();
    b.endFunction();
    return b.finish();
}

/** Find the first conditional branch in a program. */
const StaticInst *
firstBranch(const Program &p, int *block_out = nullptr)
{
    for (int blk = 0; blk < p.numBlocks(); ++blk) {
        for (const auto &si : p.block(blk).insts) {
            if (si.op == Op::Branch) {
                if (block_out)
                    *block_out = blk;
                return &si;
            }
        }
    }
    return nullptr;
}

} // namespace

TEST(Builder, IfElseLayout)
{
    Program p = buildIfElse();
    ASSERT_TRUE(p.laidOut());

    int branch_blk = -1;
    const StaticInst *br = firstBranch(p, &branch_blk);
    ASSERT_NE(br, nullptr);
    ASSERT_GE(br->reconvBlock, 0);

    // The join block must be laid out after both arms (MinPC property).
    EXPECT_GT(p.blockPc(br->reconvBlock), p.blockPc(br->targetBlock));
    EXPECT_GT(p.blockPc(br->reconvBlock),
              p.blockPc(p.block(branch_blk).fallthrough));
    // Taken arm (then) precedes the fallthrough arm (else).
    EXPECT_LT(p.blockPc(br->targetBlock),
              p.blockPc(p.block(branch_blk).fallthrough));
}

TEST(Builder, WhileLoopLayout)
{
    ProgramBuilder b("t");
    b.beginFunction("main");
    b.movImm(R_T0, 0);
    b.movImm(R_T1, 5);
    b.whileLt(R_T0, R_T1, [&] { b.addImm(R_T0, R_T0, 1); });
    b.ret();
    b.endFunction();
    Program p = b.finish();

    int hdr = -1;
    const StaticInst *br = firstBranch(p, &hdr);
    ASSERT_NE(br, nullptr);
    // Header branch: body below the exit; back edge returns to header.
    EXPECT_LT(p.blockPc(br->targetBlock), p.blockPc(br->reconvBlock));
    EXPECT_GT(p.blockPc(br->reconvBlock), p.blockPc(hdr));
    // The body's terminator jumps back to the header.
    const auto &body = p.block(br->targetBlock);
    ASSERT_TRUE(body.hasTerminator());
    EXPECT_EQ(body.insts.back().op, Op::Jump);
    EXPECT_EQ(body.insts.back().targetBlock, hdr);
}

TEST(Builder, NestedIfJoinOrdering)
{
    ProgramBuilder b("t");
    b.beginFunction("main");
    b.ifElse(R_API, Cmp::Eq, R_ZERO,
             [&] {
                 b.ifElse(R_KEY, Cmp::Lt, R_ARGLEN,
                          [&] { b.nop(); }, [&] { b.nop(); });
             },
             [&] { b.nop(); });
    b.ret();
    b.endFunction();
    Program p = b.finish();

    // Every branch's reconvergence PC dominates (is above) its targets.
    for (int blk = 0; blk < p.numBlocks(); ++blk) {
        const auto &bb = p.block(blk);
        for (const auto &si : bb.insts) {
            if (si.op != Op::Branch)
                continue;
            EXPECT_GT(p.blockPc(si.reconvBlock),
                      p.blockPc(si.targetBlock));
            EXPECT_GT(p.blockPc(si.reconvBlock),
                      p.blockPc(bb.fallthrough));
        }
    }
}

TEST(Builder, CallResolvesForwardReference)
{
    ProgramBuilder b("t");
    b.beginFunction("main");
    b.callFn("helper");
    b.ret();
    b.endFunction();
    b.beginFunction("helper");
    b.nop();
    b.ret();
    b.endFunction();
    Program p = b.finish();

    int helper = p.findFunction("helper");
    ASSERT_GE(helper, 0);
    bool found = false;
    for (int blk = 0; blk < p.numBlocks(); ++blk) {
        for (const auto &si : p.block(blk).insts) {
            if (si.op == Op::Call) {
                EXPECT_EQ(si.funcId, helper);
                found = true;
            }
        }
    }
    EXPECT_TRUE(found);
}

TEST(Builder, EndFunctionAddsImplicitRet)
{
    ProgramBuilder b("t");
    b.beginFunction("main");
    b.nop();
    b.endFunction();
    Program p = b.finish();
    const auto &entry = p.block(p.func(0).entry);
    EXPECT_EQ(entry.insts.back().op, Op::Ret);
}

TEST(Builder, PcsAreContiguous)
{
    Program p = buildIfElse();
    Pc expected = p.codeBase();
    for (int blk = 0; blk < p.numBlocks(); ++blk) {
        EXPECT_EQ(p.blockPc(blk), expected);
        expected += p.block(blk).insts.size() * kInstBytes;
    }
    EXPECT_EQ(p.staticInstCount() * kInstBytes,
              expected - p.codeBase());
}

TEST(Builder, ApiSwitchBranchCount)
{
    ProgramBuilder b("t");
    b.beginFunction("main");
    b.apiSwitch({[&] { b.nop(); }, [&] { b.nop(); }, [&] { b.nop(); }});
    b.ret();
    b.endFunction();
    Program p = b.finish();

    int branches = 0;
    for (int blk = 0; blk < p.numBlocks(); ++blk)
        for (const auto &si : p.block(blk).insts)
            branches += si.op == Op::Branch ? 1 : 0;
    // N cases need N-1 chained comparisons.
    EXPECT_EQ(branches, 2);
}

TEST(Builder, MemoryOperandEncoding)
{
    ProgramBuilder b("t");
    b.beginFunction("main");
    b.load(R_T0, R_HEAP, 64, 32);
    b.store(R_T1, R_SP, -8, 8);
    b.atomic(R_T2, R_SHARED, 16);
    b.ret();
    b.endFunction();
    Program p = b.finish();
    const auto &insts = p.block(p.func(0).entry).insts;
    EXPECT_EQ(insts[0].op, Op::Load);
    EXPECT_EQ(insts[0].accessSize, 32);
    EXPECT_EQ(insts[0].imm, 64);
    EXPECT_EQ(insts[1].op, Op::Store);
    EXPECT_EQ(insts[1].src2, R_T1);
    EXPECT_EQ(insts[2].op, Op::Atomic);
    EXPECT_EQ(insts[2].accessSize, 8);
}
