/**
 * @file
 * Tests for the timing cores: branch prediction (incl. majority
 * voting), the Table IV configurations, and pipeline-level behaviours
 * (OoO vs in-order, SMT latency, SIMT frontend amortization, icache
 * stalls, latency accounting).
 */

#include <gtest/gtest.h>

#include "core/bpred.h"
#include "core/counters.h"
#include "core/pipeline.h"
#include "simr/runner.h"

using namespace simr;
using namespace simr::core;

TEST(Gshare, LearnsBias)
{
    // Warmup touches each fresh history pattern once; steady state is
    // near perfect on an always-taken branch.
    Gshare g;
    int mispredicts = 0;
    for (int i = 0; i < 200; ++i) {
        if (g.predict(0x4000) != true)
            ++mispredicts;
        g.update(0x4000, true);
    }
    EXPECT_LT(mispredicts, 20);
    int late = 0;
    for (int i = 0; i < 100; ++i) {
        if (g.predict(0x4000) != true)
            ++late;
        g.update(0x4000, true);
    }
    EXPECT_EQ(late, 0);
}

TEST(Gshare, LearnsLoopExitPattern)
{
    // taken x7, not-taken x1, repeated: gshare's history should catch
    // the exit after warmup.
    Gshare g;
    int mispredicts = 0;
    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 8; ++i) {
            bool actual = i != 7;
            if (round > 10 && g.predict(0x100) != actual)
                ++mispredicts;
            g.update(0x100, actual);
        }
    }
    EXPECT_LT(mispredicts, 40 * 2);
}

namespace
{

trace::DynOp
branchOp(trace::Mask mask, trace::Mask taken)
{
    static isa::StaticInst si;
    si = isa::StaticInst();
    si.op = isa::Op::Branch;
    trace::DynOp op;
    op.si = &si;
    op.pc = 0x7000;
    op.mask = mask;
    op.takenMask = taken;
    return op;
}

} // namespace

TEST(BatchBpred, MajorityVoteTrainsOnCommonPath)
{
    BatchBpred bp(true);
    // 30 of 32 lanes take the branch every time.
    for (int i = 0; i < 100; ++i)
        bp.predictAndTrain(branchOp(0xffffffffu, 0x3fffffffu));
    EXPECT_GT(bp.stats().accuracy(), 0.8);
    EXPECT_EQ(bp.stats().majorityVotes, 100u);
    // The 2 minority lanes flush at commit every time regardless.
    EXPECT_EQ(bp.stats().minorityLaneFlushes, 200u);
}

TEST(BatchBpred, ScalarOpNoVote)
{
    BatchBpred bp(true);
    bp.predictAndTrain(branchOp(0x1, 0x1));
    EXPECT_EQ(bp.stats().majorityVotes, 0u);
    EXPECT_EQ(bp.stats().minorityLaneFlushes, 0u);
}

TEST(BatchBpred, MajorityVoteMinimizesFlushedLanes)
{
    // Lowest lane always diverges from the majority: training on lane
    // 0 optimizes 1 lane and squashes 31; majority voting squashes 1.
    BatchBpred vote(true), lane0(false);
    for (int i = 0; i < 50; ++i) {
        vote.predictAndTrain(branchOp(0xffffffffu, 0xfffffffeu));
        lane0.predictAndTrain(branchOp(0xffffffffu, 0xfffffffeu));
    }
    EXPECT_EQ(vote.stats().minorityLaneFlushes, 50u * 1);
    EXPECT_EQ(lane0.stats().minorityLaneFlushes, 50u * 31);
    EXPECT_EQ(vote.stats().majorityVotes, 50u);
    EXPECT_EQ(lane0.stats().majorityVotes, 0u);
}

TEST(Configs, TableIvShape)
{
    auto cpu = makeCpuConfig();
    auto smt = makeSmt8Config();
    auto rpu = makeRpuConfig();
    auto gpu = makeGpuConfig();

    EXPECT_EQ(cpu.smtThreads * cpu.batchWidth, 1);
    EXPECT_EQ(smt.smtThreads, 8);
    EXPECT_EQ(rpu.batchWidth, 32);
    EXPECT_EQ(rpu.lanes, 8);
    EXPECT_TRUE(gpu.inOrder);
    EXPECT_LT(gpu.freqGhz, cpu.freqGhz);

    // Table IV rows.
    EXPECT_EQ(cpu.mem.l1.sizeBytes, 64u * 1024);
    EXPECT_EQ(rpu.mem.l1.sizeBytes, 256u * 1024);
    EXPECT_EQ(rpu.mem.l1.banks, 8u);
    EXPECT_GT(rpu.mem.l1HitLatency, cpu.mem.l1HitLatency);
    EXPECT_GT(rpu.branchLat, cpu.branchLat);
    EXPECT_TRUE(rpu.mem.atomicsAtL3);
    EXPECT_FALSE(cpu.mem.atomicsAtL3);
    EXPECT_EQ(rpu.mem.noc.kind, mem::NocKind::Crossbar);
    EXPECT_EQ(cpu.mem.noc.kind, mem::NocKind::Mesh);
    EXPECT_TRUE(rpu.stackInterleave);
    EXPECT_FALSE(cpu.stackInterleave);
    // Chip thread counts: 98 vs 640 vs 640.
    EXPECT_EQ(cpu.chipCores, 98);
    EXPECT_EQ(smt.chipCores * smt.smtThreads, 640);
    EXPECT_EQ(rpu.chipCores * rpu.batchWidth, 640);
}

namespace
{

TimingRun
runSvc(const std::string &name, const CoreConfig &cfg, int requests = 64)
{
    auto svc = svc::buildService(name);
    TimingOptions opt;
    opt.requests = requests;
    return runTiming(*svc, cfg, opt);
}

} // namespace

TEST(TimingCore, CompletesAllRequests)
{
    auto run = runSvc("urlshort", makeCpuConfig());
    EXPECT_EQ(run.core.requests, 64u);
    EXPECT_GT(run.core.cycles, 0u);
    EXPECT_GT(run.core.scalarInsts, 64u * 20);
    EXPECT_EQ(run.core.reqLatency.count(), 64u);
}

TEST(TimingCore, CpuIpcInDataCenterRange)
{
    auto run = runSvc("memc", makeCpuConfig(), 128);
    EXPECT_GT(run.core.ipc(), 0.1);
    EXPECT_LT(run.core.ipc(), 2.5);
}

TEST(TimingCore, RpuAmortizesFrontend)
{
    auto cpu = runSvc("post", makeCpuConfig(), 128);
    auto rpu = runSvc("post", makeRpuConfig(), 128);
    // Same work, far fewer fetches (one per batch instruction).
    EXPECT_EQ(cpu.core.requests, rpu.core.requests);
    EXPECT_LT(rpu.core.counters.get(ctr::kFetch),
              cpu.core.counters.get(ctr::kFetch) / 8);
    // Lane-level retirement is comparable.
    EXPECT_NEAR(static_cast<double>(rpu.core.scalarInsts),
                static_cast<double>(cpu.core.scalarInsts),
                0.1 * static_cast<double>(cpu.core.scalarInsts));
}

TEST(TimingCore, RpuCoalescesTraffic)
{
    auto cpu = runSvc("post", makeCpuConfig(), 128);
    auto rpu = runSvc("post", makeRpuConfig(), 128);
    EXPECT_LT(rpu.core.l1Stats.accesses, cpu.core.l1Stats.accesses / 2);
}

TEST(TimingCore, InOrderSlowerThanOoO)
{
    auto rpu = runSvc("user", makeRpuConfig(), 96);
    auto gpu = runSvc("user", makeGpuConfig(), 96);
    double rpu_lat = rpu.core.meanLatencyUs();
    double gpu_lat = gpu.core.meanLatencyUs();
    EXPECT_GT(gpu_lat, 2.0 * rpu_lat);
}

TEST(TimingCore, SmtRaisesPerRequestLatency)
{
    auto cpu = runSvc("search-mid", makeCpuConfig(), 128);
    auto smt = runSvc("search-mid", makeSmt8Config(), 128);
    EXPECT_GT(smt.core.reqLatency.mean(), cpu.core.reqLatency.mean());
    EXPECT_EQ(smt.core.requests, 128u);
}

TEST(TimingCore, IcacheStallsCharged)
{
    auto run = runSvc("mcrouter", makeCpuConfig(), 64);
    EXPECT_GT(run.core.counters.get("frontend.icache_miss"), 0u);
}

TEST(TimingCore, CountersPopulated)
{
    auto run = runSvc("memc", makeRpuConfig(), 64);
    const auto &c = run.core.counters;
    for (const char *name :
         {ctr::kFetch, ctr::kDecode, ctr::kRename, ctr::kRobCommit,
          ctr::kIntOps, ctr::kRegRead, ctr::kLsqInsert, ctr::kL1Access,
          ctr::kBpLookup, ctr::kSimtSelect})
        EXPECT_GT(c.get(name), 0u) << name;
}

TEST(TimingCore, MajorityVotingCountsOnRpuOnly)
{
    auto cpu = runSvc("memc", makeCpuConfig(), 64);
    auto rpu = runSvc("memc", makeRpuConfig(), 64);
    EXPECT_EQ(cpu.core.bpStats.majorityVotes, 0u);
    EXPECT_GT(rpu.core.bpStats.majorityVotes, 0u);
}

TEST(TimingCore, LatencyIsPositiveAndBounded)
{
    auto run = runSvc("uniqueid", makeRpuConfig(), 96);
    EXPECT_GT(run.core.reqLatency.min(), 0.0);
    EXPECT_LE(run.core.reqLatency.max(),
              static_cast<double>(run.core.cycles));
}

TEST(CoreResult, CyclesToSecondsPinned)
{
    // Pins the cycles->seconds conversion that latencyRatio() and the
    // end-to-end load sweep depend on: cycles / (freqGhz * 1e9).
    CoreResult r;
    r.freqGhz = 2.5;
    EXPECT_DOUBLE_EQ(r.cyclesToSeconds(2.5e9), 1.0);
    EXPECT_DOUBLE_EQ(r.cyclesToSeconds(2500.0), 1e-6);

    r.reqLatency.add(1000.0);
    r.reqLatency.add(3000.0);  // mean latency: 2000 cycles
    EXPECT_DOUBLE_EQ(r.meanLatencySeconds(), 2000.0 / 2.5e9);
    EXPECT_DOUBLE_EQ(r.meanLatencyUs(), 0.8);

    // A slower clock makes the same cycle count take longer, so the
    // ratio between two cores must be taken in *seconds*, not cycles.
    CoreResult slow;
    slow.freqGhz = 1.25;
    EXPECT_DOUBLE_EQ(slow.cyclesToSeconds(2.5e9), 2.0);
}

TEST(TimingCore, SubBatchLaneSweepMonotone)
{
    // More SIMT lanes never slow the batch down.
    auto svc = svc::buildService("uniqueid");
    TimingOptions opt;
    opt.requests = 96;
    uint64_t prev = UINT64_MAX;
    for (int lanes : {2, 8, 32}) {
        auto cfg = makeRpuConfig();
        cfg.lanes = lanes;
        auto run = runTiming(*svc, cfg, opt);
        EXPECT_LE(run.core.cycles, prev + prev / 10);
        prev = run.core.cycles;
    }
}

class ConfigSmokeTest
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ConfigSmokeTest, AllConfigsRunAllServices)
{
    auto svc = svc::buildService(GetParam());
    TimingOptions opt;
    opt.requests = 40;
    for (const auto &cfg :
         {makeCpuConfig(), makeSmt8Config(), makeRpuConfig(),
          makeGpuConfig()}) {
        auto run = runTiming(*svc, cfg, opt);
        EXPECT_EQ(run.core.requests, 40u) << cfg.name;
        EXPECT_GT(run.core.cycles, 0u) << cfg.name;
    }
}

INSTANTIATE_TEST_SUITE_P(AllServices, ConfigSmokeTest,
                         ::testing::ValuesIn(svc::serviceNames()),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (auto &c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

TEST(EventDriven, MatchesReferenceLoop)
{
    // Fast in-tree spot check of the determinism gate (the full
    // 14 x 4 sweep runs as the ctest entry core_event_driven_gate via
    // bench_core_speed --verify): the cycle-skipping loop must
    // reproduce the per-cycle reference bit for bit, and the reference
    // must never skip.
    const auto &names = svc::serviceNames();
    std::vector<std::string> picks = {names.front(), names.back()};
    for (const auto &name : picks) {
        auto svc = svc::buildService(name);
        TimingOptions opt;
        opt.requests = 32;
        for (auto cfg : {makeCpuConfig(), makeSmt8Config(),
                         makeRpuConfig(), makeGpuConfig()}) {
            cfg.eventDriven = false;
            auto ref = runTiming(*svc, cfg, opt);
            cfg.eventDriven = true;
            auto evt = runTiming(*svc, cfg, opt);

            EXPECT_EQ(ref.core.skippedCycles, 0u) << cfg.name;
            EXPECT_EQ(ref.core.cycles, evt.core.cycles)
                << name << "/" << cfg.name;
            EXPECT_EQ(ref.core.scalarInsts, evt.core.scalarInsts)
                << name << "/" << cfg.name;
            EXPECT_EQ(ref.core.requests, evt.core.requests)
                << name << "/" << cfg.name;
            EXPECT_EQ(ref.core.counters.all(), evt.core.counters.all())
                << name << "/" << cfg.name;
            EXPECT_DOUBLE_EQ(ref.core.reqLatency.mean(),
                             evt.core.reqLatency.mean())
                << name << "/" << cfg.name;
            EXPECT_EQ(ref.core.hierStats.mshrMerges,
                      evt.core.hierStats.mshrMerges)
                << name << "/" << cfg.name;
        }
    }
}
