/**
 * @file
 * Tests for the system-level (uqsim-substitute) simulator: unloaded
 * latency composition, queueing under load, batch splitting effects,
 * throughput relationships, and journey capture: exact per-request
 * latency decomposition, scenario-consistent journey flags, and the
 * no-perturbation invariant (SysResult bit-identical with journeys
 * off, sampled or full).
 */

#include <gtest/gtest.h>

#include "obs/anatomy.h"
#include "obs/journey.h"
#include "obs/metrics.h"
#include "sys/uqsim.h"

using namespace simr;
using namespace simr::sys;

namespace
{

SysConfig
base(double kqps, bool rpu, bool split)
{
    SysConfig cfg;
    cfg.qps = kqps * 1000.0;
    cfg.rpu = rpu;
    cfg.batchSplit = split;
    cfg.requests = 20000;
    cfg.seed = 3;
    return cfg;
}

} // namespace

TEST(Uqsim, UnloadedCpuLatencyComposition)
{
    auto r = runUserScenario(base(1, false, true));
    // Hit path: 4 tier latencies + 5 network hops.
    double hit = 30 + 100 + 20 + 25 + 5 * 60;
    EXPECT_GT(r.meanUs(), hit * 0.9);
    // 90% of requests do not see storage.
    EXPECT_LT(r.e2eUs.percentile(0.5), hit * 1.5);
    // The tail is the storage path.
    EXPECT_GT(r.p99Us(), 1000.0);
    EXPECT_LT(r.p99Us(), hit + 1000 + 3 * 60 + 100);
}

TEST(Uqsim, LatencyGrowsWithLoad)
{
    auto lo = runUserScenario(base(2, false, true));
    auto mid = runUserScenario(base(15, false, true));
    EXPECT_GT(mid.meanUs(), lo.meanUs());
}

TEST(Uqsim, OverloadExplodes)
{
    auto over = runUserScenario(base(40, false, true));
    EXPECT_GT(over.meanUs(), 20.0 * 1000.0) << "way past capacity";
}

TEST(Uqsim, RpuSustainsHigherLoad)
{
    // At 40 kQPS the CPU system has collapsed; the RPU system hasn't.
    auto cpu = runUserScenario(base(40, false, true));
    auto rpu = runUserScenario(base(40, true, true));
    EXPECT_LT(rpu.meanUs() * 10, cpu.meanUs());
    EXPECT_LT(rpu.p99Us(), 2500.0);
}

TEST(Uqsim, NoSplitRaisesAverageNotTail)
{
    auto split = runUserScenario(base(30, true, true));
    auto nosplit = runUserScenario(base(30, true, false));
    // Without splitting, hits wait for the storage path at the
    // reconvergence point: average rises toward the miss latency.
    EXPECT_GT(nosplit.meanUs(), split.meanUs() + 100.0);
    // The tail is the storage path either way.
    EXPECT_NEAR(nosplit.p99Us(), split.p99Us(), 600.0);
}

TEST(Uqsim, SplitOrphansConsumeCapacity)
{
    // With splitting, orphan re-execution costs capacity: saturation
    // arrives earlier than without splitting.
    auto split = runUserScenario(base(120, true, true));
    auto nosplit = runUserScenario(base(120, true, false));
    EXPECT_GT(split.meanUs(), nosplit.meanUs());
}

TEST(Uqsim, HitRateControlsTail)
{
    auto cfg = base(5, false, true);
    cfg.memcHitRate = 1.0;
    auto all_hit = runUserScenario(cfg);
    EXPECT_LT(all_hit.p99Us(), 1000.0) << "no storage visits, no tail";
}

TEST(Uqsim, BatchFormationAddsBoundedDelay)
{
    // At low load, RPU batches emit on timeout: the extra latency is
    // bounded by the batching window.
    auto cpu = runUserScenario(base(5, false, true));
    auto rpu = runUserScenario(base(5, true, true));
    EXPECT_LT(rpu.meanUs(), cpu.meanUs() + 100.0 + 200.0);
}

TEST(Uqsim, AchievedMatchesOfferedBelowSaturation)
{
    auto r = runUserScenario(base(10, false, true));
    EXPECT_NEAR(r.achievedQps, 10000.0, 1500.0);
}

TEST(Uqsim, DeterministicForSeed)
{
    auto a = runUserScenario(base(10, true, true));
    auto b = runUserScenario(base(10, true, true));
    EXPECT_DOUBLE_EQ(a.meanUs(), b.meanUs());
    EXPECT_DOUBLE_EQ(a.p99Us(), b.p99Us());
}

namespace
{

/** Run the scenario with a journey recorder in scope. */
SysResult
runWithJourneys(const SysConfig &cfg, obs::JourneyRecorder *rec)
{
    obs::Registry reg;
    obs::Scope scope(&reg, nullptr, rec);
    return runUserScenario(cfg);
}

} // namespace

TEST(UqsimJourneys, DecomposeExactlyToEndToEndLatency)
{
    obs::JourneyRecorder rec(obs::JourneyMode::Sampled, 128);
    auto r = runWithJourneys(base(20, true, true), &rec);
    EXPECT_EQ(rec.seen(), 20000u);
    auto journeys = rec.snapshot();
    ASSERT_FALSE(journeys.empty());
    ASSERT_LE(journeys.size(), 128u);
    for (const auto &j : journeys) {
        ASSERT_GE(j.events.size(), 2u);
        EXPECT_EQ(j.events.front().kind, obs::JStage::Arrival);
        EXPECT_EQ(j.events.back().kind, obs::JStage::Completion);
        // Time-ordered causal chain.
        for (size_t k = 1; k < j.events.size(); ++k)
            EXPECT_GE(j.events[k].tick, j.events[k - 1].tick)
                << "req " << j.reqId << " event " << k;
        // The tentpole identity: buckets sum EXACTLY to e2e.
        obs::RequestAnatomy a = obs::decompose(j);
        EXPECT_EQ(a.sumTicks(), a.e2eTicks) << "req " << j.reqId;
        // And with the chip link splitting the user tier's service.
        obs::ChipLink link;
        link.tier = 1;
        link.divergenceFrac = 0.33;
        link.memoryFrac = 0.25;
        obs::RequestAnatomy al = obs::decompose(j, &link);
        EXPECT_EQ(al.sumTicks(), al.e2eTicks) << "req " << j.reqId;
        // The journey's latency matches the histogram's value range
        // (ticks quantize at 2^-10 us).
        EXPECT_GE(j.e2eUs(), r.e2eUs.min() - 0.001);
        EXPECT_LE(j.e2eUs(), r.e2eUs.max() + 0.001);
    }
}

TEST(UqsimJourneys, AllModeCapturesEveryRequest)
{
    SysConfig cfg = base(20, true, true);
    cfg.requests = 4000;
    obs::JourneyRecorder rec(obs::JourneyMode::All, 64);
    runWithJourneys(cfg, &rec);
    EXPECT_EQ(rec.seen(), 4000u);
    EXPECT_EQ(rec.kept(), 4000u);
    auto journeys = rec.snapshot();
    ASSERT_EQ(journeys.size(), 4000u);
    for (size_t i = 0; i < journeys.size(); ++i)
        EXPECT_EQ(journeys[i].reqId, i);
}

TEST(UqsimJourneys, FlagsReflectTheScenario)
{
    // Split RPU system: misses visit storage (tier 4) as orphans;
    // hits complete at the memcached tier and never block.
    SysConfig cfg = base(20, true, true);
    cfg.requests = 4000;
    obs::JourneyRecorder rec(obs::JourneyMode::All, 64);
    runWithJourneys(cfg, &rec);
    size_t misses = 0;
    for (const auto &j : rec.snapshot()) {
        bool storage = false;
        for (const auto &e : j.events)
            if (e.kind == obs::JStage::TierStart && e.tier == 4)
                storage = true;
        EXPECT_EQ(storage, j.miss) << "req " << j.reqId;
        EXPECT_EQ(j.orphan, j.miss) << "req " << j.reqId;
        EXPECT_FALSE(j.blockedOnBatch) << "req " << j.reqId;
        misses += j.miss;
    }
    EXPECT_GT(misses, 0u);

    // Unsplit RPU system: hits in a mixed batch stall at the
    // reconvergence point -- a foreign-caused ReconvJoin segment.
    SysConfig nosplit = cfg;
    nosplit.batchSplit = false;
    obs::JourneyRecorder rec2(obs::JourneyMode::All, 64);
    runWithJourneys(nosplit, &rec2);
    size_t blocked = 0;
    for (const auto &j : rec2.snapshot()) {
        if (!j.blockedOnBatch)
            continue;
        ++blocked;
        EXPECT_FALSE(j.miss) << "req " << j.reqId;
        bool foreign_join = false;
        for (const auto &e : j.events)
            if (e.kind == obs::JStage::ReconvJoin && e.foreign)
                foreign_join = true;
        EXPECT_TRUE(foreign_join) << "req " << j.reqId;
    }
    EXPECT_GT(blocked, 0u);
}

TEST(UqsimJourneys, CaptureNeverPerturbsSysResult)
{
    // The no-perturbation invariant at test scale (bench_obs
    // --verify-journeys re-checks it across thread counts): every
    // histogram sample and tier statistic is bit-identical with
    // journeys off, sampled and full.
    SysConfig cfg = base(20, true, true);
    cfg.requests = 6000;
    auto off = runUserScenario(cfg);
    obs::JourneyRecorder sampled(obs::JourneyMode::Sampled, 64);
    auto mid = runWithJourneys(cfg, &sampled);
    obs::JourneyRecorder all(obs::JourneyMode::All, 64);
    auto full = runWithJourneys(cfg, &all);
    for (const auto *r : {&mid, &full}) {
        EXPECT_DOUBLE_EQ(r->achievedQps, off.achievedQps);
        EXPECT_TRUE(r->e2eUs.identicalTo(off.e2eUs));
        ASSERT_EQ(r->tiers.size(), off.tiers.size());
        for (size_t t = 0; t < off.tiers.size(); ++t) {
            EXPECT_EQ(r->tiers[t].waitUs.count(),
                      off.tiers[t].waitUs.count());
            EXPECT_DOUBLE_EQ(r->tiers[t].waitUs.sum(),
                             off.tiers[t].waitUs.sum());
            EXPECT_DOUBLE_EQ(r->tiers[t].serviceUs.sum(),
                             off.tiers[t].serviceUs.sum());
        }
    }
}
