/**
 * @file
 * Tests for the system-level (uqsim-substitute) simulator: unloaded
 * latency composition, queueing under load, batch splitting effects and
 * throughput relationships.
 */

#include <gtest/gtest.h>

#include "sys/uqsim.h"

using namespace simr;
using namespace simr::sys;

namespace
{

SysConfig
base(double kqps, bool rpu, bool split)
{
    SysConfig cfg;
    cfg.qps = kqps * 1000.0;
    cfg.rpu = rpu;
    cfg.batchSplit = split;
    cfg.requests = 20000;
    cfg.seed = 3;
    return cfg;
}

} // namespace

TEST(Uqsim, UnloadedCpuLatencyComposition)
{
    auto r = runUserScenario(base(1, false, true));
    // Hit path: 4 tier latencies + 5 network hops.
    double hit = 30 + 100 + 20 + 25 + 5 * 60;
    EXPECT_GT(r.meanUs(), hit * 0.9);
    // 90% of requests do not see storage.
    EXPECT_LT(r.e2eUs.percentile(0.5), hit * 1.5);
    // The tail is the storage path.
    EXPECT_GT(r.p99Us(), 1000.0);
    EXPECT_LT(r.p99Us(), hit + 1000 + 3 * 60 + 100);
}

TEST(Uqsim, LatencyGrowsWithLoad)
{
    auto lo = runUserScenario(base(2, false, true));
    auto mid = runUserScenario(base(15, false, true));
    EXPECT_GT(mid.meanUs(), lo.meanUs());
}

TEST(Uqsim, OverloadExplodes)
{
    auto over = runUserScenario(base(40, false, true));
    EXPECT_GT(over.meanUs(), 20.0 * 1000.0) << "way past capacity";
}

TEST(Uqsim, RpuSustainsHigherLoad)
{
    // At 40 kQPS the CPU system has collapsed; the RPU system hasn't.
    auto cpu = runUserScenario(base(40, false, true));
    auto rpu = runUserScenario(base(40, true, true));
    EXPECT_LT(rpu.meanUs() * 10, cpu.meanUs());
    EXPECT_LT(rpu.p99Us(), 2500.0);
}

TEST(Uqsim, NoSplitRaisesAverageNotTail)
{
    auto split = runUserScenario(base(30, true, true));
    auto nosplit = runUserScenario(base(30, true, false));
    // Without splitting, hits wait for the storage path at the
    // reconvergence point: average rises toward the miss latency.
    EXPECT_GT(nosplit.meanUs(), split.meanUs() + 100.0);
    // The tail is the storage path either way.
    EXPECT_NEAR(nosplit.p99Us(), split.p99Us(), 600.0);
}

TEST(Uqsim, SplitOrphansConsumeCapacity)
{
    // With splitting, orphan re-execution costs capacity: saturation
    // arrives earlier than without splitting.
    auto split = runUserScenario(base(120, true, true));
    auto nosplit = runUserScenario(base(120, true, false));
    EXPECT_GT(split.meanUs(), nosplit.meanUs());
}

TEST(Uqsim, HitRateControlsTail)
{
    auto cfg = base(5, false, true);
    cfg.memcHitRate = 1.0;
    auto all_hit = runUserScenario(cfg);
    EXPECT_LT(all_hit.p99Us(), 1000.0) << "no storage visits, no tail";
}

TEST(Uqsim, BatchFormationAddsBoundedDelay)
{
    // At low load, RPU batches emit on timeout: the extra latency is
    // bounded by the batching window.
    auto cpu = runUserScenario(base(5, false, true));
    auto rpu = runUserScenario(base(5, true, true));
    EXPECT_LT(rpu.meanUs(), cpu.meanUs() + 100.0 + 200.0);
}

TEST(Uqsim, AchievedMatchesOfferedBelowSaturation)
{
    auto r = runUserScenario(base(10, false, true));
    EXPECT_NEAR(r.achievedQps, 10000.0, 1500.0);
}

TEST(Uqsim, DeterministicForSeed)
{
    auto a = runUserScenario(base(10, true, true));
    auto b = runUserScenario(base(10, true, true));
    EXPECT_DOUBLE_EQ(a.meanUs(), b.meanUs());
    EXPECT_DOUBLE_EQ(a.p99Us(), b.p99Us());
}
