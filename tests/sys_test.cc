/**
 * @file
 * Tests for the system-level (uqsim-substitute) simulator: unloaded
 * latency composition, queueing under load, batch splitting effects,
 * throughput relationships, and journey capture: exact per-request
 * latency decomposition, scenario-consistent journey flags, and the
 * no-perturbation invariant (SysResult bit-identical with journeys
 * off, sampled or full).
 */

#include <gtest/gtest.h>

#include "obs/anatomy.h"
#include "obs/journey.h"
#include "obs/metrics.h"
#include "sys/cluster.h"
#include "sys/pdes.h"
#include "sys/uqsim.h"

using namespace simr;
using namespace simr::sys;

namespace
{

SysConfig
base(double kqps, bool rpu, bool split)
{
    SysConfig cfg;
    cfg.qps = kqps * 1000.0;
    cfg.rpu = rpu;
    cfg.batchSplit = split;
    cfg.requests = 20000;
    cfg.seed = 3;
    return cfg;
}

} // namespace

TEST(Uqsim, UnloadedCpuLatencyComposition)
{
    auto r = runUserScenario(base(1, false, true));
    // Hit path: 4 tier latencies + 5 network hops.
    double hit = 30 + 100 + 20 + 25 + 5 * 60;
    EXPECT_GT(r.meanUs(), hit * 0.9);
    // 90% of requests do not see storage.
    EXPECT_LT(r.e2eUs.percentile(0.5), hit * 1.5);
    // The tail is the storage path.
    EXPECT_GT(r.p99Us(), 1000.0);
    EXPECT_LT(r.p99Us(), hit + 1000 + 3 * 60 + 100);
}

TEST(Uqsim, LatencyGrowsWithLoad)
{
    auto lo = runUserScenario(base(2, false, true));
    auto mid = runUserScenario(base(15, false, true));
    EXPECT_GT(mid.meanUs(), lo.meanUs());
}

TEST(Uqsim, OverloadExplodes)
{
    auto over = runUserScenario(base(40, false, true));
    EXPECT_GT(over.meanUs(), 20.0 * 1000.0) << "way past capacity";
}

TEST(Uqsim, RpuSustainsHigherLoad)
{
    // At 40 kQPS the CPU system has collapsed; the RPU system hasn't.
    auto cpu = runUserScenario(base(40, false, true));
    auto rpu = runUserScenario(base(40, true, true));
    EXPECT_LT(rpu.meanUs() * 10, cpu.meanUs());
    EXPECT_LT(rpu.p99Us(), 2500.0);
}

TEST(Uqsim, NoSplitRaisesAverageNotTail)
{
    auto split = runUserScenario(base(30, true, true));
    auto nosplit = runUserScenario(base(30, true, false));
    // Without splitting, hits wait for the storage path at the
    // reconvergence point: average rises toward the miss latency.
    EXPECT_GT(nosplit.meanUs(), split.meanUs() + 100.0);
    // The tail is the storage path either way.
    EXPECT_NEAR(nosplit.p99Us(), split.p99Us(), 600.0);
}

TEST(Uqsim, SplitOrphansConsumeCapacity)
{
    // With splitting, orphan re-execution costs capacity: saturation
    // arrives earlier than without splitting.
    auto split = runUserScenario(base(120, true, true));
    auto nosplit = runUserScenario(base(120, true, false));
    EXPECT_GT(split.meanUs(), nosplit.meanUs());
}

TEST(Uqsim, HitRateControlsTail)
{
    auto cfg = base(5, false, true);
    cfg.memcHitRate = 1.0;
    auto all_hit = runUserScenario(cfg);
    EXPECT_LT(all_hit.p99Us(), 1000.0) << "no storage visits, no tail";
}

TEST(Uqsim, BatchFormationAddsBoundedDelay)
{
    // At low load, RPU batches emit on timeout: the extra latency is
    // bounded by the batching window.
    auto cpu = runUserScenario(base(5, false, true));
    auto rpu = runUserScenario(base(5, true, true));
    EXPECT_LT(rpu.meanUs(), cpu.meanUs() + 100.0 + 200.0);
}

TEST(Uqsim, AchievedMatchesOfferedBelowSaturation)
{
    auto r = runUserScenario(base(10, false, true));
    EXPECT_NEAR(r.achievedQps, 10000.0, 1500.0);
}

TEST(Uqsim, DeterministicForSeed)
{
    auto a = runUserScenario(base(10, true, true));
    auto b = runUserScenario(base(10, true, true));
    EXPECT_DOUBLE_EQ(a.meanUs(), b.meanUs());
    EXPECT_DOUBLE_EQ(a.p99Us(), b.p99Us());
}

namespace
{

/** Run the scenario with a journey recorder in scope. */
SysResult
runWithJourneys(const SysConfig &cfg, obs::JourneyRecorder *rec)
{
    obs::Registry reg;
    obs::Scope scope(&reg, nullptr, rec);
    return runUserScenario(cfg);
}

} // namespace

TEST(UqsimJourneys, DecomposeExactlyToEndToEndLatency)
{
    obs::JourneyRecorder rec(obs::JourneyMode::Sampled, 128);
    auto r = runWithJourneys(base(20, true, true), &rec);
    EXPECT_EQ(rec.seen(), 20000u);
    auto journeys = rec.snapshot();
    ASSERT_FALSE(journeys.empty());
    ASSERT_LE(journeys.size(), 128u);
    for (const auto &j : journeys) {
        ASSERT_GE(j.events.size(), 2u);
        EXPECT_EQ(j.events.front().kind, obs::JStage::Arrival);
        EXPECT_EQ(j.events.back().kind, obs::JStage::Completion);
        // Time-ordered causal chain.
        for (size_t k = 1; k < j.events.size(); ++k)
            EXPECT_GE(j.events[k].tick, j.events[k - 1].tick)
                << "req " << j.reqId << " event " << k;
        // The tentpole identity: buckets sum EXACTLY to e2e.
        obs::RequestAnatomy a = obs::decompose(j);
        EXPECT_EQ(a.sumTicks(), a.e2eTicks) << "req " << j.reqId;
        // And with the chip link splitting the user tier's service.
        obs::ChipLink link;
        link.tier = 1;
        link.divergenceFrac = 0.33;
        link.memoryFrac = 0.25;
        obs::RequestAnatomy al = obs::decompose(j, &link);
        EXPECT_EQ(al.sumTicks(), al.e2eTicks) << "req " << j.reqId;
        // The journey's latency matches the histogram's value range
        // (ticks quantize at 2^-10 us).
        EXPECT_GE(j.e2eUs(), r.e2eUs.min() - 0.001);
        EXPECT_LE(j.e2eUs(), r.e2eUs.max() + 0.001);
    }
}

TEST(UqsimJourneys, AllModeCapturesEveryRequest)
{
    SysConfig cfg = base(20, true, true);
    cfg.requests = 4000;
    obs::JourneyRecorder rec(obs::JourneyMode::All, 64);
    runWithJourneys(cfg, &rec);
    EXPECT_EQ(rec.seen(), 4000u);
    EXPECT_EQ(rec.kept(), 4000u);
    auto journeys = rec.snapshot();
    ASSERT_EQ(journeys.size(), 4000u);
    for (size_t i = 0; i < journeys.size(); ++i)
        EXPECT_EQ(journeys[i].reqId, i);
}

TEST(UqsimJourneys, FlagsReflectTheScenario)
{
    // Split RPU system: misses visit storage (tier 4) as orphans;
    // hits complete at the memcached tier and never block.
    SysConfig cfg = base(20, true, true);
    cfg.requests = 4000;
    obs::JourneyRecorder rec(obs::JourneyMode::All, 64);
    runWithJourneys(cfg, &rec);
    size_t misses = 0;
    for (const auto &j : rec.snapshot()) {
        bool storage = false;
        for (const auto &e : j.events)
            if (e.kind == obs::JStage::TierStart && e.tier == 4)
                storage = true;
        EXPECT_EQ(storage, j.miss) << "req " << j.reqId;
        EXPECT_EQ(j.orphan, j.miss) << "req " << j.reqId;
        EXPECT_FALSE(j.blockedOnBatch) << "req " << j.reqId;
        misses += j.miss;
    }
    EXPECT_GT(misses, 0u);

    // Unsplit RPU system: hits in a mixed batch stall at the
    // reconvergence point -- a foreign-caused ReconvJoin segment.
    SysConfig nosplit = cfg;
    nosplit.batchSplit = false;
    obs::JourneyRecorder rec2(obs::JourneyMode::All, 64);
    runWithJourneys(nosplit, &rec2);
    size_t blocked = 0;
    for (const auto &j : rec2.snapshot()) {
        if (!j.blockedOnBatch)
            continue;
        ++blocked;
        EXPECT_FALSE(j.miss) << "req " << j.reqId;
        bool foreign_join = false;
        for (const auto &e : j.events)
            if (e.kind == obs::JStage::ReconvJoin && e.foreign)
                foreign_join = true;
        EXPECT_TRUE(foreign_join) << "req " << j.reqId;
    }
    EXPECT_GT(blocked, 0u);
}

TEST(UqsimJourneys, CaptureNeverPerturbsSysResult)
{
    // The no-perturbation invariant at test scale (bench_obs
    // --verify-journeys re-checks it across thread counts): every
    // histogram sample and tier statistic is bit-identical with
    // journeys off, sampled and full.
    SysConfig cfg = base(20, true, true);
    cfg.requests = 6000;
    auto off = runUserScenario(cfg);
    obs::JourneyRecorder sampled(obs::JourneyMode::Sampled, 64);
    auto mid = runWithJourneys(cfg, &sampled);
    obs::JourneyRecorder all(obs::JourneyMode::All, 64);
    auto full = runWithJourneys(cfg, &all);
    for (const auto *r : {&mid, &full}) {
        EXPECT_DOUBLE_EQ(r->achievedQps, off.achievedQps);
        EXPECT_TRUE(r->e2eUs.identicalTo(off.e2eUs));
        ASSERT_EQ(r->tiers.size(), off.tiers.size());
        for (size_t t = 0; t < off.tiers.size(); ++t) {
            EXPECT_EQ(r->tiers[t].waitUs.count(),
                      off.tiers[t].waitUs.count());
            EXPECT_DOUBLE_EQ(r->tiers[t].waitUs.sum(),
                             off.tiers[t].waitUs.sum());
            EXPECT_DOUBLE_EQ(r->tiers[t].serviceUs.sum(),
                             off.tiers[t].serviceUs.sum());
        }
    }
}

// ---------------------------------------------------------------------
// Construction-time validation (SysConfig / ClusterConfig): bad
// configurations die loudly at the config boundary, before simulating.
// ---------------------------------------------------------------------

TEST(SysConfigValidation, RejectsNonsense)
{
    SysConfig c;
    c.qps = 0;
    EXPECT_DEATH(c.validate(), "qps");

    c = SysConfig{};
    c.requests = 0;
    EXPECT_DEATH(c.validate(), "requests");

    c = SysConfig{};
    c.batchSize = 0;
    EXPECT_DEATH(c.validate(), "batchSize");

    c = SysConfig{};
    c.netUs = -1;
    EXPECT_DEATH(c.validate(), "netUs");

    c = SysConfig{};
    c.userCores = 0;
    EXPECT_DEATH(c.validate(), "core");

    c = SysConfig{};
    c.memcHitRate = 1.5;
    EXPECT_DEATH(c.validate(), "memcHitRate");

    c = SysConfig{};
    c.storageSvcUs = 0;
    EXPECT_DEATH(c.validate(), "service latencies");
}

TEST(ClusterConfigValidation, RejectsEmptyGraphsAndBadLoad)
{
    ClusterConfig c;
    c.webServers = 0;
    EXPECT_DEATH(c.validate(), "empty graph");

    c = ClusterConfig{};
    c.storageServers = 0;
    EXPECT_DEATH(c.validate(), "empty graph");

    c = ClusterConfig{};
    c.storageCores = 0;
    EXPECT_DEATH(c.validate(), "storageCores");

    c = ClusterConfig{};
    c.users = 0;
    EXPECT_DEATH(c.validate(), "users");

    c = ClusterConfig{};
    c.requests = 0;
    EXPECT_DEATH(c.validate(), "requests");

    c = ClusterConfig{};
    c.qps = -5;
    EXPECT_DEATH(c.validate(), "qps");

    c = ClusterConfig{};
    c.burstProb = 2;
    EXPECT_DEATH(c.validate(), "burstProb");

    c = ClusterConfig{};
    c.mailboxCapacity = 0;
    EXPECT_DEATH(c.validate(), "mailboxCapacity");

    // A bad embedded SysConfig is caught through the same gate.
    c = ClusterConfig{};
    c.base.memcHitRate = -0.1;
    EXPECT_DEATH(c.validate(), "memcHitRate");
}

// ---------------------------------------------------------------------
// Sharded PDES cluster engine vs the sequential reference.
// ---------------------------------------------------------------------

namespace
{

ClusterConfig
smallCluster(bool rpu, bool split)
{
    ClusterConfig c;
    c.webServers = 4;
    c.userServers = 3;
    c.mcrouterServers = 2;
    c.memcServers = 2;
    c.storageServers = 1;
    c.users = 500;
    c.requests = 6000;
    c.qps = 30000;
    c.seed = 7;
    c.base.rpu = rpu;
    c.base.batchSplit = split;
    return c;
}

ClusterResult
runSharded(ClusterConfig cfg, int shards, int threads)
{
    cfg.shards = shards;
    cfg.threads = threads;
    obs::Registry reg;
    obs::Scope scope(&reg);
    return runCluster(cfg);
}

ClusterResult
runClusterSequentialInScope(const ClusterConfig &cfg)
{
    obs::Registry reg;
    obs::Scope scope(&reg);
    return runClusterSequential(cfg);
}

/** Bit-identity over everything the cluster scenario reports
 *  (pdes stats excluded: they describe the engine, not the model). */
void
expectSameCluster(const ClusterResult &a, const ClusterResult &b)
{
    EXPECT_EQ(a.servers, b.servers);
    EXPECT_EQ(a.batches, b.batches);
    EXPECT_EQ(a.memcMisses, b.memcMisses);
    EXPECT_EQ(a.splitOrphans, b.splitOrphans);
    EXPECT_EQ(a.sys.offeredQps, b.sys.offeredQps);
    EXPECT_EQ(a.sys.achievedQps, b.sys.achievedQps);
    EXPECT_TRUE(a.sys.e2eUs.identicalTo(b.sys.e2eUs));
    ASSERT_EQ(a.sys.tiers.size(), b.sys.tiers.size());
    for (size_t t = 0; t < a.sys.tiers.size(); ++t) {
        SCOPED_TRACE("tier " + a.sys.tiers[t].name);
        const RunningStat &aw = a.sys.tiers[t].waitUs;
        const RunningStat &bw = b.sys.tiers[t].waitUs;
        EXPECT_EQ(a.sys.tiers[t].name, b.sys.tiers[t].name);
        EXPECT_EQ(aw.count(), bw.count());
        EXPECT_EQ(aw.sum(), bw.sum());
        EXPECT_EQ(aw.mean(), bw.mean());
        EXPECT_EQ(aw.min(), bw.min());
        EXPECT_EQ(aw.max(), bw.max());
        EXPECT_EQ(aw.variance(), bw.variance());
        const RunningStat &as = a.sys.tiers[t].serviceUs;
        const RunningStat &bs = b.sys.tiers[t].serviceUs;
        EXPECT_EQ(as.count(), bs.count());
        EXPECT_EQ(as.sum(), bs.sum());
        EXPECT_EQ(as.variance(), bs.variance());
    }
}

} // namespace

TEST(ClusterPdes, ShardAndThreadCountIndependence)
{
    // The regression companion of ctest's sys_pdes_gate: SysResult --
    // including every per-tier statistic, which is merged across
    // shards in node order -- must not depend on how the cluster is
    // sharded or how many workers drive it.
    for (bool rpu : {false, true}) {
        SCOPED_TRACE(rpu ? "rpu" : "cpu");
        ClusterResult ref =
            runClusterSequentialInScope(smallCluster(rpu, true));
        for (int shards : {1, 2, 8, 16})
            for (int threads : {1, 4}) {
                SCOPED_TRACE(std::to_string(shards) + " shards, " +
                             std::to_string(threads) + " threads");
                expectSameCluster(
                    ref, runSharded(smallCluster(rpu, true), shards,
                                    threads));
            }
    }
}

TEST(ClusterPdes, ZeroLookaheadDegeneratesToSequential)
{
    // netUs == 0 admits no conservative window: the engine must fall
    // back to the sequential single-shard loop (bit-identically, by
    // construction) rather than parallelize incorrectly.
    ClusterConfig cfg = smallCluster(true, true);
    cfg.base.netUs = 0;
    ClusterResult ref = runClusterSequentialInScope(cfg);
    ClusterResult r = runSharded(cfg, 8, 4);
    EXPECT_EQ(r.pdes.shards, 1);
    EXPECT_EQ(r.pdes.workers, 1);
    EXPECT_EQ(r.pdes.mailboxSends, 0u);
    expectSameCluster(ref, r);
}

TEST(ClusterPdes, MailboxOverflowBackpressureIsInvisible)
{
    // A one-slot mailbox must overflow into the spill path under any
    // real cross-shard traffic -- and the spill must change nothing
    // but the transport diagnostics.
    ClusterConfig cfg = smallCluster(true, true);
    cfg.mailboxCapacity = 1;
    ClusterResult ref = runClusterSequentialInScope(cfg);
    ClusterResult r = runSharded(cfg, 16, 4);
    EXPECT_GT(r.pdes.mailboxSends, 0u);
    EXPECT_GT(r.pdes.mailboxOverflows, 0u);
    expectSameCluster(ref, r);
}

namespace
{

/**
 * Toy PDES model for kernel edge cases: `origins` tokens hop around a
 * ring of nodes, each hop exactly one lookahead L later. With zero
 * service latency every cross-shard event lands EXACTLY on its source
 * window's end -- the boundary the conservative contract (>=, strict <
 * on processing) must handle. Each node logs its (time, key) sequence.
 */
struct ChainModel : sys::Model
{
    uint32_t nnodes;
    double net;
    std::vector<std::vector<std::pair<double, uint64_t>>> log;

    ChainModel(uint32_t n, double l) : nnodes(n), net(l), log(n) {}

    uint32_t nodeCount() const override { return nnodes; }
    void prepare(int, int) override {}

    void
    apply(const sys::Event &ev, sys::EventSink &sink, int) override
    {
        log[ev.node].push_back({ev.time, ev.key});
        if (ev.aux == 0)
            return;
        sink.emit({ev.time + net, ev.key + 1,
                   (ev.node + 1) % nnodes, 0, ev.batch, ev.aux - 1});
    }
};

} // namespace

TEST(ClusterPdes, CrossShardEventExactlyAtWindowBoundary)
{
    // 16 tokens x 12 hops on an 8-node ring, every hop landing exactly
    // at the emitting window's end. The sharded runs must log the very
    // same per-node (time, key) sequences as the sequential one, and
    // conservative windowing must advance exactly one time step per
    // window (hops + 1 windows: nothing is processed early, nothing
    // is starved).
    const uint32_t nodes = 8;
    const uint64_t origins = 16, hops = 12;
    const double net = 5.0;
    auto initial = [&] {
        std::vector<sys::Event> evs;
        for (uint64_t o = 0; o < origins; ++o)
            evs.push_back({0.0, o * (hops + 1),
                           static_cast<uint32_t>(o % nodes), 0, o,
                           hops});
        return evs;
    };

    ChainModel ref(nodes, net);
    sys::PdesConfig seq;
    seq.lookaheadUs = net;
    sys::PdesStats seq_stats = sys::runPdes(ref, initial(), seq);
    EXPECT_EQ(seq_stats.events, origins * (hops + 1));

    for (int shards : {2, 4, 8})
        for (int threads : {1, 3}) {
            SCOPED_TRACE(std::to_string(shards) + " shards, " +
                         std::to_string(threads) + " threads");
            ChainModel m(nodes, net);
            sys::PdesConfig pc;
            pc.lookaheadUs = net;
            pc.shards = shards;
            pc.threads = threads;
            pc.mailboxCapacity = 4;
            sys::PdesStats st = sys::runPdes(m, initial(), pc);
            EXPECT_EQ(st.events, origins * (hops + 1));
            EXPECT_EQ(st.windows, hops + 1);
            EXPECT_GT(st.mailboxSends, 0u);
            EXPECT_EQ(m.log, ref.log);
        }
}

// ---------------------------------------------------------------------
// Journey capture at cluster scale.
// ---------------------------------------------------------------------

namespace
{

ClusterResult
runClusterWithJourneys(ClusterConfig cfg, int shards, int threads,
                       obs::JourneyRecorder *rec)
{
    cfg.shards = shards;
    cfg.threads = threads;
    obs::Registry reg;
    obs::Scope scope(&reg, nullptr, rec);
    return runCluster(cfg);
}

} // namespace

TEST(ClusterJourneys, FlagsAndExactDecompositionAcrossShards)
{
    // Full capture on the sharded engine: every request journeys, the
    // per-bucket decomposition telescopes exactly, and the flags match
    // the scenario (split RPU: misses are storage-visiting orphans).
    ClusterConfig cfg = smallCluster(true, true);
    cfg.requests = 3000;
    obs::JourneyRecorder rec(obs::JourneyMode::All, 64);
    runClusterWithJourneys(cfg, 8, 4, &rec);
    EXPECT_EQ(rec.seen(), cfg.requests);
    EXPECT_EQ(rec.kept(), cfg.requests);
    auto journeys = rec.snapshot();
    ASSERT_EQ(journeys.size(), cfg.requests);
    size_t misses = 0;
    for (size_t i = 0; i < journeys.size(); ++i) {
        const obs::Journey &j = journeys[i];
        EXPECT_EQ(j.reqId, i);
        ASSERT_GE(j.events.size(), 2u);
        EXPECT_EQ(j.events.front().kind, obs::JStage::Arrival);
        EXPECT_EQ(j.events.back().kind, obs::JStage::Completion);
        for (size_t k = 1; k < j.events.size(); ++k)
            EXPECT_GE(j.events[k].tick, j.events[k - 1].tick)
                << "req " << j.reqId << " event " << k;
        obs::RequestAnatomy a = obs::decompose(j);
        EXPECT_EQ(a.sumTicks(), a.e2eTicks) << "req " << j.reqId;
        bool storage = false;
        for (const auto &e : j.events)
            if (e.kind == obs::JStage::TierStart && e.tier == 4)
                storage = true;
        EXPECT_EQ(storage, j.miss) << "req " << j.reqId;
        EXPECT_EQ(j.orphan, j.miss) << "req " << j.reqId;
        EXPECT_FALSE(j.blockedOnBatch) << "req " << j.reqId;
        misses += j.miss;
    }
    EXPECT_GT(misses, 0u);

    // Unsplit RPU: hits in mixed batches stall at the reconvergence
    // point, flagged as foreign-caused ReconvJoin segments.
    ClusterConfig nosplit = smallCluster(true, false);
    nosplit.requests = 3000;
    obs::JourneyRecorder rec2(obs::JourneyMode::All, 64);
    runClusterWithJourneys(nosplit, 8, 4, &rec2);
    size_t blocked = 0;
    for (const auto &j : rec2.snapshot()) {
        if (!j.blockedOnBatch)
            continue;
        ++blocked;
        EXPECT_FALSE(j.miss) << "req " << j.reqId;
        bool foreign_join = false;
        for (const auto &e : j.events)
            if (e.kind == obs::JStage::ReconvJoin && e.foreign)
                foreign_join = true;
        EXPECT_TRUE(foreign_join) << "req " << j.reqId;
    }
    EXPECT_GT(blocked, 0u);
}

TEST(ClusterJourneys, CaptureNeverPerturbsClusterResult)
{
    // Journey capture is read-only at cluster scale too: full capture
    // on the sharded engine reports the same bits as the sequential
    // reference with no recorder at all.
    ClusterConfig cfg = smallCluster(true, true);
    ClusterResult off = runClusterSequentialInScope(cfg);
    obs::JourneyRecorder rec(obs::JourneyMode::All, 64);
    ClusterResult full = runClusterWithJourneys(cfg, 8, 4, &rec);
    expectSameCluster(off, full);
}
