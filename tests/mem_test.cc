/**
 * @file
 * Tests for the memory subsystem: caches, TLB, the stack-interleaving
 * address map, the MCU coalescing patterns, allocator bank policies,
 * DRAM queueing, interconnect latency and the full hierarchy.
 */

#include <gtest/gtest.h>

#include <set>

#include "isa/isa.h"
#include "mem/allocator.h"
#include "mem/cache.h"
#include "mem/coalescer.h"
#include "mem/dram.h"
#include "mem/hierarchy.h"
#include "mem/interconnect.h"
#include "mem/tlb.h"

using namespace simr;
using namespace simr::mem;

namespace
{

CacheConfig
smallCache(uint64_t kb = 1, uint32_t assoc = 2, uint32_t banks = 1)
{
    CacheConfig c;
    c.sizeBytes = kb * 1024;
    c.assoc = assoc;
    c.banks = banks;
    return c;
}

/** Build a divergent batch load DynOp over the given addresses. */
trace::DynOp
memOp(const std::vector<Addr> &addrs, isa::Op op = isa::Op::Load,
      uint16_t size = 8)
{
    static isa::StaticInst si;
    si = isa::StaticInst();
    si.op = op;
    si.accessSize = size;
    trace::DynOp d;
    d.si = &si;
    d.accessSize = size;
    d.addrCount = static_cast<uint8_t>(addrs.size());
    d.mask = addrs.size() >= 32 ?
        0xffffffffu : ((1u << addrs.size()) - 1);
    for (size_t i = 0; i < addrs.size(); ++i) {
        d.lane[i] = static_cast<uint8_t>(i);
        d.addr[i] = addrs[i];
    }
    return d;
}

} // namespace

TEST(Cache, HitAfterFill)
{
    Cache c(smallCache());
    EXPECT_FALSE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x101f, false)) << "same 32B line";
    EXPECT_FALSE(c.access(0x1020, false)) << "next line";
    EXPECT_EQ(c.stats().accesses, 4u);
    EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, LruEviction)
{
    // 1KB, 2-way, 32B lines -> 16 sets. Three lines in one set evict
    // the least recently used.
    Cache c(smallCache(1, 2));
    Addr set_stride = 16 * 32;
    c.access(0, false);
    c.access(set_stride, false);
    EXPECT_TRUE(c.access(0, false));  // 0 is now MRU
    c.access(2 * set_stride, false);  // evicts set_stride
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(set_stride));
    EXPECT_TRUE(c.probe(2 * set_stride));
}

TEST(Cache, WritebackOnDirtyEviction)
{
    Cache c(smallCache(1, 2));
    Addr set_stride = 16 * 32;
    c.access(0, true);               // dirty
    c.access(set_stride, false);
    c.access(2 * set_stride, false); // evicts dirty line 0
    c.access(3 * set_stride, false); // evicts clean set_stride
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, BankMapping)
{
    Cache c(smallCache(8, 8, 8));
    EXPECT_EQ(c.bankOf(0), 0u);
    EXPECT_EQ(c.bankOf(32), 1u);
    EXPECT_EQ(c.bankOf(7 * 32), 7u);
    EXPECT_EQ(c.bankOf(8 * 32), 0u);
}

TEST(Cache, ResetClears)
{
    Cache c(smallCache());
    c.access(0x40, true);
    c.reset();
    EXPECT_FALSE(c.probe(0x40));
    EXPECT_EQ(c.stats().accesses, 0u);
}

TEST(Tlb, HitAndMissCounting)
{
    Tlb t({4, 1, 4096});
    EXPECT_FALSE(t.lookup(0x1000, 0));
    EXPECT_TRUE(t.lookup(0x1800, 0)) << "same 4KB page";
    EXPECT_FALSE(t.lookup(0x5000, 0));
    EXPECT_EQ(t.stats().lookups, 3u);
    EXPECT_EQ(t.stats().misses, 2u);
}

TEST(Tlb, PerBankDuplication)
{
    // The same page inserted in two banks occupies two entries: the
    // duplication cost the paper describes.
    Tlb t({8, 2, 4096});
    EXPECT_FALSE(t.lookup(0x1000, 0));
    EXPECT_FALSE(t.lookup(0x1000, 1)) << "other bank misses separately";
    EXPECT_TRUE(t.lookup(0x1000, 0));
    EXPECT_TRUE(t.lookup(0x1000, 1));
}

TEST(Tlb, InvalidatePageHitsAllBanks)
{
    Tlb t({8, 2, 4096});
    t.lookup(0x1000, 0);
    t.lookup(0x1000, 1);
    t.invalidatePage(0x1234);
    EXPECT_FALSE(t.lookup(0x1000, 0));
    EXPECT_FALSE(t.lookup(0x1000, 1));
}

TEST(AddressMap, IdentityWithoutInterleave)
{
    AddressMap m(false, 32);
    Addr a = AddressSpace::stackTop(5) - 64;
    EXPECT_EQ(m.toPhysical(a), a);
}

TEST(AddressMap, NonStackUntouched)
{
    AddressMap m(true, 32);
    EXPECT_EQ(m.toPhysical(AddressSpace::kSharedHeapBase + 100),
              AddressSpace::kSharedHeapBase + 100);
    EXPECT_EQ(m.toPhysical(AddressSpace::kPrivateHeapBase + 100),
              AddressSpace::kPrivateHeapBase + 100);
}

TEST(AddressMap, StackInterleavePacksLanesContiguously)
{
    // Fig. 13: word w of lane t lands at (w * batch + t) words from the
    // batch base. Same offset across lanes => consecutive 4B words.
    AddressMap m(true, 32);
    Addr off = 512;  // word-aligned offset within each lane's stack
    Addr base = m.toPhysical(AddressSpace::stackSegmentBase(0) + off);
    for (uint64_t lane = 0; lane < 32; ++lane) {
        Addr pa = m.toPhysical(
            AddressSpace::stackSegmentBase(lane) + off);
        EXPECT_EQ(pa, base + lane * 4);
    }
}

TEST(AddressMap, StackInterleaveIsInjective)
{
    AddressMap m(true, 4);
    std::set<Addr> phys;
    for (uint64_t lane = 0; lane < 4; ++lane)
        for (Addr off = 0; off < 64; ++off)
            phys.insert(m.toPhysical(
                AddressSpace::stackSegmentBase(lane) + off));
    EXPECT_EQ(phys.size(), 4u * 64u);
}

TEST(Allocator, GlibcArenasShareBankAlignment)
{
    HeapAllocator glibc(AllocPolicy::GlibcLike);
    Addr b0 = glibc.arenaBase(0);
    for (uint64_t t = 1; t < 8; ++t)
        EXPECT_EQ((glibc.arenaBase(t) / 32) % 8, (b0 / 32) % 8)
            << "page-aligned arenas collide on one bank";
}

TEST(Allocator, SimrAwareSpreadsBanks)
{
    HeapAllocator aware(AllocPolicy::SimrAware);
    std::set<Addr> banks;
    for (uint64_t t = 0; t < 8; ++t)
        banks.insert((aware.arenaBase(t) / 32) % 8);
    EXPECT_EQ(banks.size(), 8u) << "one bank per lane";
}

TEST(Allocator, ArenasDoNotOverlap)
{
    for (auto pol : {AllocPolicy::GlibcLike, AllocPolicy::SimrAware}) {
        HeapAllocator a(pol);
        for (uint64_t t = 0; t + 1 < 64; ++t)
            EXPECT_GE(a.arenaBase(t + 1),
                      a.arenaBase(t) + AddressSpace::kArenaStride - 4096);
    }
}

TEST(Mcu, SameWordCoalescesToOne)
{
    AddressMap m(true, 32);
    Mcu mcu(m);
    std::vector<MemAccess> out;
    auto op = memOp(std::vector<Addr>(16, AddressSpace::kSharedHeapBase));
    auto kind = mcu.coalesce(op, out);
    EXPECT_EQ(kind, CoalesceKind::SameWord);
    EXPECT_EQ(out.size(), 1u);
}

TEST(Mcu, ConsecutiveWordsCoalesceToLines)
{
    AddressMap m(true, 32);
    Mcu mcu(m);
    std::vector<Addr> addrs;
    for (int i = 0; i < 16; ++i)
        addrs.push_back(AddressSpace::kSharedHeapBase + 8 * i);
    std::vector<MemAccess> out;
    auto kind = mcu.coalesce(memOp(addrs), out);
    EXPECT_EQ(kind, CoalesceKind::Consecutive);
    EXPECT_EQ(out.size(), 4u) << "16 x 8B = 128B = 4 lines";
}

TEST(Mcu, StackLockstepPushMatchesPaperExample)
{
    // Paper Fig. 14 discussion: a 32-thread 8-byte push generates
    // 8B x 32 / 32B = 8 accesses under stack interleaving.
    AddressMap m(true, 32);
    Mcu mcu(m);
    std::vector<Addr> addrs;
    for (uint64_t lane = 0; lane < 32; ++lane)
        addrs.push_back(AddressSpace::stackSegmentBase(lane) + 1024);
    std::vector<MemAccess> out;
    auto kind = mcu.coalesce(memOp(addrs, isa::Op::Store), out);
    EXPECT_EQ(kind, CoalesceKind::Stack);
    EXPECT_EQ(out.size(), 8u);
    for (const auto &a : out)
        EXPECT_TRUE(a.isStore);
}

TEST(Mcu, DivergentGeneratesPerLane)
{
    AddressMap m(true, 32);
    Mcu mcu(m);
    std::vector<Addr> addrs;
    for (uint64_t lane = 0; lane < 32; ++lane)
        addrs.push_back(AddressSpace::kPrivateHeapBase +
                        lane * 0x10000 + (lane % 3) * 8);
    std::vector<MemAccess> out;
    auto kind = mcu.coalesce(memOp(addrs), out);
    EXPECT_EQ(kind, CoalesceKind::Divergent);
    EXPECT_EQ(out.size(), 32u);
}

TEST(Mcu, ScalarStraddleSplitsLine)
{
    AddressMap m(false, 1);
    Mcu mcu(m);
    std::vector<MemAccess> out;
    auto kind = mcu.coalesce(
        memOp({AddressSpace::kSharedHeapBase + 28}), out);
    EXPECT_EQ(kind, CoalesceKind::Scalar);
    EXPECT_EQ(out.size(), 2u) << "8B access at line offset 28 straddles";
}

TEST(Mcu, ReductionFactorStat)
{
    AddressMap m(true, 32);
    Mcu mcu(m);
    std::vector<MemAccess> out;
    mcu.coalesce(memOp(std::vector<Addr>(32,
        AddressSpace::kSharedHeapBase)), out);
    EXPECT_EQ(mcu.stats().laneAccesses, 32u);
    EXPECT_EQ(mcu.stats().generatedAccesses, 1u);
    EXPECT_DOUBLE_EQ(mcu.stats().reductionFactor(), 32.0);
}

TEST(Dram, QueueingUnderBurst)
{
    Dram d({1, 1.0, 100, 32});  // 1 B/cycle -> 32 cycles per line
    uint32_t first = d.access(0, 0);
    uint32_t second = d.access(0, 64);
    EXPECT_EQ(first, 100u);
    EXPECT_EQ(second, 132u) << "second access queues behind the first";
    EXPECT_GT(d.stats().avgQueueDelay(), 0.0);
}

TEST(Dram, ChannelsSpreadLoad)
{
    Dram d({2, 1.0, 100, 32});
    // Adjacent lines hit different channels: no queueing.
    EXPECT_EQ(d.access(0, 0), 100u);
    EXPECT_EQ(d.access(0, 32), 100u);
}

TEST(Noc, MeshVsCrossbar)
{
    Noc mesh({NocKind::Mesh, 9, 2, 4, 32});
    Noc xbar({NocKind::Crossbar, 9, 2, 4, 32});
    EXPECT_GT(mesh.transfer(32), xbar.transfer(32));
    EXPECT_EQ(xbar.avgHops(), 1u);
    EXPECT_GT(mesh.avgHops(), 4u);
    EXPECT_GT(mesh.stats().flitHops, xbar.stats().flitHops);
}

TEST(Hierarchy, AtomicsBypassToL3)
{
    MemPathConfig cfg;
    cfg.l1 = smallCache(64, 8, 8);
    cfg.l2 = smallCache(512, 8, 1);
    cfg.l3 = smallCache(256, 16, 1);
    cfg.atomicsAtL3 = true;
    AddressMap m(true, 32);
    MemoryHierarchy h(cfg, m);

    MemAccess a;
    a.paddr = 0x1000;
    a.isAtomic = true;
    h.accessOne(0, a);
    EXPECT_EQ(h.stats().atomicsAtL3, 1u);
    EXPECT_EQ(h.l1().stats().accesses, 0u) << "private caches bypassed";
    EXPECT_EQ(h.l3().stats().accesses, 1u);
}

TEST(Hierarchy, MshrMergesSameLine)
{
    MemPathConfig cfg;
    cfg.l1 = smallCache(64, 8, 8);
    cfg.l2 = smallCache(512, 8, 1);
    cfg.l3 = smallCache(256, 16, 1);
    AddressMap m(false, 1);
    MemoryHierarchy h(cfg, m);

    MemAccess a;
    a.paddr = 0x4000;
    uint32_t lat1 = h.accessOne(0, a);
    a.paddr = 0x4008;  // same line, one cycle later
    uint32_t lat2 = h.accessOne(1, a);
    EXPECT_GT(lat1, cfg.l1HitLatency);
    EXPECT_LT(lat2, lat1) << "merged into the outstanding miss";
    EXPECT_EQ(h.stats().mshrMerges, 1u);
}

TEST(Hierarchy, BankConflictSerializes)
{
    MemPathConfig cfg;
    cfg.l1 = smallCache(64, 8, 8);
    cfg.l2 = smallCache(512, 8, 1);
    cfg.l3 = smallCache(256, 16, 1);
    AddressMap m(false, 1);
    MemoryHierarchy h(cfg, m);

    // Warm two lines in the same bank (stride 8 banks x 32B).
    MemAccess a;
    a.paddr = 0x8000;
    h.accessOne(0, a);
    a.paddr = 0x8000 + 8 * 32;
    h.accessOne(0, a);
    uint64_t before = h.stats().l1BankConflictCycles;

    std::vector<MemAccess> group = {{0x8000, false, false},
                                    {0x8000 + 8 * 32, false, false}};
    h.accessGroup(100, group, CoalesceKind::Divergent);
    EXPECT_GT(h.stats().l1BankConflictCycles, before);
}

TEST(Hierarchy, GroupLatencyIsWorstCase)
{
    MemPathConfig cfg;
    cfg.l1 = smallCache(64, 8, 8);
    cfg.l2 = smallCache(512, 8, 1);
    cfg.l3 = smallCache(256, 16, 1);
    AddressMap m(false, 1);
    MemoryHierarchy h(cfg, m);

    // Warm one line; leave the other cold.
    MemAccess warm{0x100, false, false};
    h.accessOne(0, warm);
    std::vector<MemAccess> group = {{0x100, false, false},
                                    {0xabcd00, false, false}};
    uint32_t lat = h.accessGroup(50, group, CoalesceKind::Divergent);
    EXPECT_GT(lat, cfg.l1HitLatency) << "cold lane dominates";
}

TEST(AddressSpace, Classification)
{
    EXPECT_EQ(AddressSpace::classify(AddressSpace::kCodeBase),
              Segment::Code);
    EXPECT_EQ(AddressSpace::classify(AddressSpace::kDataBase + 8),
              Segment::SharedData);
    EXPECT_EQ(AddressSpace::classify(AddressSpace::kSharedHeapBase + 8),
              Segment::SharedHeap);
    EXPECT_EQ(AddressSpace::classify(AddressSpace::kPrivateHeapBase + 8),
              Segment::PrivateHeap);
    EXPECT_EQ(AddressSpace::classify(AddressSpace::kStackBase + 8),
              Segment::Stack);
    EXPECT_EQ(AddressSpace::classify(0x10), Segment::Other);
}

TEST(CacheConfigValidation, RejectsBadGeometry)
{
    // Construction-time validation: a bad geometry must die loudly at
    // the config boundary, not corrupt set indexing later.
    CacheConfig c = smallCache();
    c.lineBytes = 48;  // not a power of two
    EXPECT_DEATH(Cache{c}, "lineBytes");

    c = smallCache();
    c.assoc = 0;
    EXPECT_DEATH(Cache{c}, "assoc >= 1");

    c = smallCache();
    c.banks = 0;
    EXPECT_DEATH(Cache{c}, "banks >= 1");

    c = smallCache();
    c.bankInterleave = c.lineBytes / 2;
    EXPECT_DEATH(Cache{c}, "bankInterleave >= lineBytes");
}

TEST(MemPathConfigValidation, RejectsZeroMshrs)
{
    MemPathConfig cfg;
    cfg.l1 = smallCache(64, 8, 8);
    cfg.l2 = smallCache(512, 8, 1);
    cfg.l3 = smallCache(256, 16, 1);
    cfg.mshrs = 0;
    AddressMap m(false, 1);
    // The MshrTable member asserts before MemPathConfig::validate()
    // gets its turn; either way, zero MSHRs dies at construction.
    EXPECT_DEATH((MemoryHierarchy{cfg, m}), "entries >= 1");
}

TEST(MshrTable, KeepsLiveFillsBeyondCapacity)
{
    // The fixed table spills past its nominal capacity rather than
    // dropping live fills: merge behaviour must be identical to the
    // unbounded map it replaced.
    MshrTable t(2);
    t.insert(0x1000, 100, 0);
    t.insert(0x2000, 110, 0);
    t.insert(0x3000, 120, 0);  // beyond the 2 primary slots
    t.insert(0x4000, 130, 0);
    EXPECT_EQ(t.liveFills(0), 4u);
    EXPECT_EQ(t.lookup(0x1000), 100u);
    EXPECT_EQ(t.lookup(0x2000), 110u);
    EXPECT_EQ(t.lookup(0x3000), 120u);
    EXPECT_EQ(t.lookup(0x4000), 130u);
    EXPECT_EQ(t.lookup(0x5000), 0u);
}

TEST(MshrTable, RefreshDoesNotDuplicate)
{
    MshrTable t(2);
    t.insert(0x1000, 100, 0);
    t.insert(0x1000, 150, 0);  // same line refreshed, like map[line]=
    EXPECT_EQ(t.liveFills(0), 1u);
    EXPECT_EQ(t.lookup(0x1000), 150u);
}

TEST(MshrTable, RecyclesDeadSlots)
{
    // Completed fills can never merge again; their slots are reused in
    // place and dead overflow entries are compacted away, so the table
    // stays near its live size instead of growing run-long.
    MshrTable t(1);
    t.insert(0x1000, 10, 0);   // primary
    t.insert(0x2000, 10, 0);   // overflow
    t.insert(0x3000, 10, 0);   // overflow
    EXPECT_EQ(t.liveFills(0), 3u);
    // At cycle 20 everything completed; a new fill reuses a dead slot.
    t.insert(0x4000, 30, 20);
    EXPECT_EQ(t.liveFills(20), 1u);
    EXPECT_EQ(t.lookup(0x4000), 30u);
    EXPECT_EQ(t.lookup(0x1000), 0u) << "dead entry recycled";
}

TEST(Hierarchy, MshrMergesPreservedOverCapacity)
{
    // With a single nominal MSHR, two outstanding misses to different
    // lines must still both merge follow-on accesses (the spill list
    // keeps the second fill); the rewrite must not change merge counts.
    MemPathConfig cfg;
    cfg.l1 = smallCache(64, 8, 8);
    cfg.l2 = smallCache(512, 8, 1);
    cfg.l3 = smallCache(256, 16, 1);
    cfg.mshrs = 1;
    AddressMap m(false, 1);
    MemoryHierarchy h(cfg, m);

    MemAccess a;
    a.paddr = 0x10000;
    uint32_t lat1 = h.accessOne(0, a);
    a.paddr = 0x20000;  // different line and bank, also a miss
    uint32_t lat2 = h.accessOne(0, a);
    ASSERT_GT(lat1, cfg.l1HitLatency);
    ASSERT_GT(lat2, cfg.l1HitLatency);

    a.paddr = 0x10008;
    h.accessOne(1, a);
    a.paddr = 0x20008;
    h.accessOne(1, a);
    EXPECT_EQ(h.stats().mshrMerges, 2u)
        << "over-capacity fill lost its merge window";
}
