/**
 * @file
 * Unit tests for the per-thread interpreter: value semantics of every
 * AluKind, control flow, call depth, dependency distances and
 * termination.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "isa/builder.h"
#include "trace/interp.h"

using namespace simr;
using namespace simr::isa;
using trace::StepResult;
using trace::ThreadInit;
using trace::ThreadState;

namespace
{

/** Run a single-block program to completion; return final regs read. */
ThreadState
runProgram(const Program &p, ThreadInit init = ThreadInit())
{
    static std::vector<std::unique_ptr<Program>> keep_alive;
    ThreadState t(p);
    t.reset(init);
    StepResult r;
    int guard = 100000;
    while (!t.done() && guard-- > 0)
        t.step(r);
    EXPECT_TRUE(t.done());
    return t;
}

Program
makeAluProgram(AluKind k, int64_t a, int64_t b_val, int64_t imm)
{
    ProgramBuilder b("t");
    b.beginFunction("main");
    b.movImm(R_T0, a);
    b.movImm(R_T1, b_val);
    b.alu(k, R_T2, R_T0, R_T1, imm);
    b.ret();
    b.endFunction();
    return b.finish();
}

int64_t
evalAlu(AluKind k, int64_t a, int64_t b, int64_t imm)
{
    Program p = makeAluProgram(k, a, b, imm);
    ThreadState t(p);
    t.reset(ThreadInit());
    StepResult r;
    while (!t.done())
        t.step(r);
    return t.reg(R_T2);
}

} // namespace

TEST(Interp, AluSemantics)
{
    EXPECT_EQ(evalAlu(AluKind::Add, 3, 4, 0), 7);
    EXPECT_EQ(evalAlu(AluKind::AddImm, 3, 0, 10), 13);
    EXPECT_EQ(evalAlu(AluKind::Sub, 9, 4, 0), 5);
    EXPECT_EQ(evalAlu(AluKind::Mul, 6, 7, 0), 42);
    EXPECT_EQ(evalAlu(AluKind::Div, 42, 6, 0), 7);
    EXPECT_EQ(evalAlu(AluKind::Div, 42, 0, 0), 0) << "div by zero safe";
    EXPECT_EQ(evalAlu(AluKind::And, 0b1100, 0b1010, 0), 0b1000);
    EXPECT_EQ(evalAlu(AluKind::AndImm, 0b1100, 0, 0b0110), 0b0100);
    EXPECT_EQ(evalAlu(AluKind::Or, 0b1100, 0b1010, 0), 0b1110);
    EXPECT_EQ(evalAlu(AluKind::Xor, 0b1100, 0b1010, 0), 0b0110);
    EXPECT_EQ(evalAlu(AluKind::Shl, 3, 0, 4), 48);
    EXPECT_EQ(evalAlu(AluKind::Shr, 48, 0, 4), 3);
    EXPECT_EQ(evalAlu(AluKind::Min, 3, 9, 0), 3);
    EXPECT_EQ(evalAlu(AluKind::Max, 3, 9, 0), 9);
    EXPECT_EQ(evalAlu(AluKind::ModImm, 47, 0, 10), 7);
    EXPECT_EQ(evalAlu(AluKind::ModImm, 47, 0, 0), 0) << "mod 0 safe";
    EXPECT_EQ(evalAlu(AluKind::Mov, 5, 0, 0), 5);
    EXPECT_EQ(evalAlu(AluKind::Mix, 1, 2, 3),
              static_cast<int64_t>(mix64(1 ^ 2 ^ 3)));
}

TEST(Interp, RegZeroIsImmutable)
{
    ProgramBuilder b("t");
    b.beginFunction("main");
    b.movImm(R_ZERO, 99);
    b.mov(R_T0, R_ZERO);
    b.ret();
    b.endFunction();
    Program p = b.finish();
    ThreadState t = runProgram(p);
    EXPECT_EQ(t.reg(R_T0), 0);
}

TEST(Interp, InitialRegisters)
{
    ProgramBuilder b("t");
    b.beginFunction("main");
    b.ret();
    b.endFunction();
    Program p = b.finish();

    ThreadInit init;
    init.api = 2;
    init.argLen = 5;
    init.key = 0xabcd;
    init.tid = 7;
    init.sharedBase = 0x1000;
    init.stackTop = 0x2000;
    init.heapBase = 0x3000;
    ThreadState t(p);
    t.reset(init);
    EXPECT_EQ(t.reg(R_API), 2);
    EXPECT_EQ(t.reg(R_ARGLEN), 5);
    EXPECT_EQ(t.reg(R_KEY), 0xabcd);
    EXPECT_EQ(t.reg(R_TID), 7);
    EXPECT_EQ(t.reg(R_SHARED), 0x1000);
    EXPECT_EQ(t.reg(R_SP), 0x2000);
    EXPECT_EQ(t.reg(R_HEAP), 0x3000);
}

TEST(Interp, BranchCmpKinds)
{
    for (auto [cmp, a, b_val, expect_taken] :
         {std::tuple{Cmp::Eq, 4, 4, true}, {Cmp::Eq, 4, 5, false},
          {Cmp::Ne, 4, 5, true}, {Cmp::Ne, 4, 4, false},
          {Cmp::Lt, 3, 4, true}, {Cmp::Lt, 4, 4, false},
          {Cmp::Ge, 4, 4, true}, {Cmp::Ge, 3, 4, false}}) {
        ProgramBuilder b("t");
        b.beginFunction("main");
        b.movImm(R_T0, a);
        b.movImm(R_T1, b_val);
        b.ifElse(R_T0, cmp, R_T1,
                 [&] { b.movImm(R_T2, 1); },
                 [&] { b.movImm(R_T2, 2); });
        b.ret();
        b.endFunction();
        Program p = b.finish();
        ThreadState t = runProgram(p);
        EXPECT_EQ(t.reg(R_T2), expect_taken ? 1 : 2)
            << "cmp " << static_cast<int>(cmp) << " " << a << "," << b_val;
    }
}

TEST(Interp, ForLoopTripCount)
{
    ProgramBuilder b("t");
    b.beginFunction("main");
    b.movImm(R_T2, 0);
    b.forLoopImm(R_T0, R_T1, 13, [&] { b.addImm(R_T2, R_T2, 2); });
    b.ret();
    b.endFunction();
    Program p = b.finish();
    ThreadState t = runProgram(p);
    EXPECT_EQ(t.reg(R_T2), 26);
}

TEST(Interp, ArgLenDrivenLoop)
{
    ProgramBuilder b("t");
    b.beginFunction("main");
    b.movImm(R_T2, 0);
    b.forLoop(R_T0, R_ARGLEN, [&] { b.addImm(R_T2, R_T2, 1); });
    b.ret();
    b.endFunction();
    Program p = b.finish();

    for (int len : {1, 3, 8}) {
        ThreadInit init;
        init.argLen = len;
        ThreadState t = runProgram(p, init);
        EXPECT_EQ(t.reg(R_T2), len);
    }
}

TEST(Interp, CallDepthTracked)
{
    ProgramBuilder b("t");
    b.beginFunction("leaf");
    b.nop();
    b.ret();
    b.endFunction();
    b.beginFunction("mid");
    b.callFn("leaf");
    b.ret();
    b.endFunction();
    b.beginFunction("main");
    b.callFn("mid");
    b.ret();
    b.endFunction();
    Program p = b.finish();

    ThreadState t(p);
    t.reset(ThreadInit());
    int max_depth = 0;
    StepResult r;
    while (!t.done()) {
        t.step(r);
        max_depth = std::max(max_depth, static_cast<int>(r.callDepth));
    }
    EXPECT_EQ(max_depth, 2);
}

TEST(Interp, LoadValueDeterministicByAddressAndSeed)
{
    ProgramBuilder b("t");
    b.beginFunction("main");
    b.load(R_T0, R_HEAP, 16);
    b.load(R_T1, R_HEAP, 16);
    b.load(R_T2, R_HEAP, 24);
    b.ret();
    b.endFunction();
    Program p = b.finish();

    ThreadInit init;
    init.heapBase = 0x4000;
    init.dataSeed = 99;
    ThreadState t = runProgram(p, init);
    EXPECT_EQ(t.reg(R_T0), t.reg(R_T1)) << "same address, same value";
    EXPECT_NE(t.reg(R_T0), t.reg(R_T2)) << "different address differs";

    init.dataSeed = 100;
    ThreadState t2 = runProgram(p, init);
    EXPECT_NE(t.reg(R_T0), t2.reg(R_T0)) << "seed changes values";
}

TEST(Interp, MemAddressesReported)
{
    ProgramBuilder b("t");
    b.beginFunction("main");
    b.store(R_T0, R_SP, -8);
    b.ret();
    b.endFunction();
    Program p = b.finish();

    ThreadInit init;
    init.stackTop = 0x8000;
    ThreadState t(p);
    t.reset(init);
    StepResult r;
    t.step(r);
    EXPECT_EQ(r.si->op, Op::Store);
    EXPECT_EQ(r.addr, 0x8000u - 8);
    EXPECT_EQ(r.accessSize, 8);
}

TEST(Interp, DepDistances)
{
    ProgramBuilder b("t");
    b.beginFunction("main");
    b.movImm(R_T0, 1);      // dyn 1
    b.movImm(R_T1, 2);      // dyn 2
    b.alu(AluKind::Add, R_T2, R_T0, R_T1);  // dyn 3: deps 2 and 1
    b.ret();
    b.endFunction();
    Program p = b.finish();

    ThreadState t(p);
    t.reset(ThreadInit());
    StepResult r;
    t.step(r);
    t.step(r);
    t.step(r);
    EXPECT_EQ(r.dep1, 2);
    EXPECT_EQ(r.dep2, 1);
}

TEST(Interp, AtomicValueVariesPerAttempt)
{
    ProgramBuilder b("t");
    b.beginFunction("main");
    b.atomic(R_T0, R_SHARED, 0);
    b.mov(R_T2, R_T0);
    b.atomic(R_T1, R_SHARED, 0);
    b.ret();
    b.endFunction();
    Program p = b.finish();
    ThreadState t = runProgram(p);
    EXPECT_NE(t.reg(R_T2), t.reg(R_T1));
    EXPECT_EQ(t.atomicCount(), 2u);
}

TEST(Interp, ResetClearsState)
{
    ProgramBuilder b("t");
    b.beginFunction("main");
    b.addImm(R_T0, R_T0, 1);
    b.ret();
    b.endFunction();
    Program p = b.finish();

    ThreadState t(p);
    t.reset(ThreadInit());
    StepResult r;
    while (!t.done())
        t.step(r);
    uint64_t n1 = t.dynCount();
    t.reset(ThreadInit());
    EXPECT_FALSE(t.done());
    EXPECT_EQ(t.dynCount(), 0u);
    while (!t.done())
        t.step(r);
    EXPECT_EQ(t.dynCount(), n1);
    EXPECT_EQ(t.reg(R_T0), 1) << "register state reset between requests";
}

TEST(Interp, EmptyArmNormalizes)
{
    ProgramBuilder b("t");
    b.beginFunction("main");
    b.ifImm(R_API, Cmp::Eq, 7, [&] { b.movImm(R_T0, 1); });
    b.movImm(R_T1, 2);
    b.ret();
    b.endFunction();
    Program p = b.finish();

    ThreadInit init;
    init.api = 0;  // not taken: walks through the empty else arm
    ThreadState t = runProgram(p, init);
    EXPECT_EQ(t.reg(R_T0), 0);
    EXPECT_EQ(t.reg(R_T1), 2);
}
