/**
 * @file
 * Tests for the observability layer: metrics registry (counters,
 * gauges, sharded histograms, merge, exposition pages), thread-local
 * scoping, the Chrome trace-event tracer (golden-string format check),
 * the divergence profiler's exact-attribution invariant, and the
 * deterministic per-cell scoping of simr::runCells.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "obs/divergence.h"
#include "obs/metrics.h"
#include "obs/spans.h"
#include "obs/trace.h"
#include "simr/runner.h"
#include "sys/uqsim.h"

using namespace simr;

TEST(Registry, CounterGaugeBasics)
{
    obs::Registry reg;
    obs::Counter *c = reg.counter("a.count");
    c->inc();
    c->inc(4);
    EXPECT_EQ(c->value(), 5u);
    // get-or-create returns the same handle.
    EXPECT_EQ(reg.counter("a.count"), c);

    obs::Gauge *g = reg.gauge("a.ratio");
    g->set(0.75);
    EXPECT_DOUBLE_EQ(g->value(), 0.75);
    g->set(0.5);
    EXPECT_DOUBLE_EQ(g->value(), 0.5);
}

TEST(Registry, TextPageStableAndSorted)
{
    obs::Registry reg;
    reg.counter("z.last")->inc(2);
    reg.counter("a.first")->inc(1);
    reg.gauge("m.mid")->set(1.5);
    reg.hist("h.lat")->add(10.0);
    std::string page = reg.textPage();
    EXPECT_NE(page.find("counter a.first 1\n"), std::string::npos);
    EXPECT_NE(page.find("counter z.last 2\n"), std::string::npos);
    EXPECT_NE(page.find("gauge m.mid 1.5\n"), std::string::npos);
    EXPECT_NE(page.find("hist h.lat count=1"), std::string::npos);
    // Sorted: a.first precedes z.last.
    EXPECT_LT(page.find("a.first"), page.find("z.last"));
    // Rendering twice is bit-identical.
    EXPECT_EQ(page, reg.textPage());
}

TEST(Registry, JsonPageParsesShape)
{
    obs::Registry reg;
    reg.counter("c")->inc(7);
    reg.gauge("g")->set(2.5);
    reg.hist("h")->add(1.0);
    std::string j = reg.jsonPage();
    EXPECT_NE(j.find("\"counters\""), std::string::npos);
    EXPECT_NE(j.find("\"c\": 7"), std::string::npos);
    EXPECT_NE(j.find("\"gauges\""), std::string::npos);
    EXPECT_NE(j.find("\"histograms\""), std::string::npos);
    EXPECT_NE(j.find("\"count\": 1"), std::string::npos);
}

TEST(Registry, MergeAddsCountersAndHists)
{
    obs::Registry a, b;
    a.counter("shared")->inc(3);
    b.counter("shared")->inc(4);
    b.counter("only_b")->inc(1);
    a.gauge("g")->set(1.0);
    b.gauge("g")->set(9.0);
    a.hist("h")->add(1.0);
    b.hist("h")->add(3.0);
    a.merge(b);
    EXPECT_EQ(a.counter("shared")->value(), 7u);
    EXPECT_EQ(a.counter("only_b")->value(), 1u);
    EXPECT_DOUBLE_EQ(a.gauge("g")->value(), 9.0);  // last writer wins
    Histogram h = a.hist("h")->snapshot();
    EXPECT_EQ(h.count(), 2u);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(ShardedHist, ExactUnderThreadPoolContention)
{
    // Hammer one registry from a pool; the merged aggregate must match
    // the serial reference exactly in count/mean/min/max, because the
    // shard merge is exact (order within a shard is preserved and
    // RunningStat::merge is the exact combine).
    obs::Registry reg;
    obs::ShardedHist *h = reg.hist("contended");
    obs::Counter *c = reg.counter("adds");
    constexpr int kThreads = 8;
    constexpr int kPerThread = 5000;

    parallelFor(kThreads, [&](size_t t) {
        Rng r(1000 + t);
        for (int i = 0; i < kPerThread; ++i) {
            h->add(r.uniform() * 100.0);
            c->inc();
        }
    }, kThreads);

    // Serial reference over the same per-thread streams.
    Histogram ref;
    for (size_t t = 0; t < kThreads; ++t) {
        Rng r(1000 + t);
        for (int i = 0; i < kPerThread; ++i)
            ref.add(r.uniform() * 100.0);
    }

    EXPECT_EQ(c->value(),
              static_cast<uint64_t>(kThreads) * kPerThread);
    Histogram got = h->snapshot();
    EXPECT_EQ(got.count(), ref.count());
    EXPECT_DOUBLE_EQ(got.min(), ref.min());
    EXPECT_DOUBLE_EQ(got.max(), ref.max());
    EXPECT_NEAR(got.mean(), ref.mean(), 1e-9);
    EXPECT_DOUBLE_EQ(got.percentile(0.5), ref.percentile(0.5));
}

TEST(Scope, NestsAndRestores)
{
    EXPECT_EQ(obs::Scope::registry(), &obs::Registry::global());
    obs::Registry outer, inner;
    {
        obs::Scope s1(&outer);
        EXPECT_EQ(obs::Scope::registry(), &outer);
        {
            obs::Scope s2(&inner);
            EXPECT_EQ(obs::Scope::registry(), &inner);
            obs::Scope::registry()->counter("x")->inc();
        }
        EXPECT_EQ(obs::Scope::registry(), &outer);
    }
    EXPECT_EQ(obs::Scope::registry(), &obs::Registry::global());
    EXPECT_EQ(inner.counter("x")->value(), 1u);
    EXPECT_EQ(outer.counter("x")->value(), 0u);
}

#if SIMR_OBS_TRACE
TEST(Scope, TracerVisibleOnlyInScope)
{
    EXPECT_EQ(obs::Scope::tracer(), nullptr);
    obs::Registry reg;
    obs::Tracer tr;
    {
        obs::Scope s(&reg, &tr);
        EXPECT_EQ(obs::Scope::tracer(), &tr);
    }
    EXPECT_EQ(obs::Scope::tracer(), nullptr);
}
#endif

TEST(Tracer, GoldenChromeJson)
{
    obs::Tracer tr;
    tr.processName(1, "chip");
    tr.complete("op", "cat", 1.0, 2.5, 1, 3, {{"n", obs::jnum(
        static_cast<uint64_t>(7))}});
    tr.instant("hit", "ev", 4.0, 1, 3);
    tr.asyncBegin("req", "r", 9, 0.5, 1);
    tr.asyncEnd("req", "r", 9, 6.0, 1);
    std::string expect =
        "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
        "{\"name\":\"process_name\",\"cat\":\"simr\",\"ph\":\"M\","
        "\"ts\":0.000,\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"chip\"}},\n"
        "{\"name\":\"op\",\"cat\":\"cat\",\"ph\":\"X\",\"ts\":1.000,"
        "\"dur\":2.500,\"pid\":1,\"tid\":3,\"args\":{\"n\":7}},\n"
        "{\"name\":\"hit\",\"cat\":\"ev\",\"ph\":\"i\",\"ts\":4.000,"
        "\"pid\":1,\"tid\":3},\n"
        "{\"name\":\"req\",\"cat\":\"r\",\"ph\":\"b\",\"ts\":0.500,"
        "\"pid\":1,\"tid\":0,\"id\":9},\n"
        "{\"name\":\"req\",\"cat\":\"r\",\"ph\":\"e\",\"ts\":6.000,"
        "\"pid\":1,\"tid\":0,\"id\":9}\n"
        "]}\n";
    EXPECT_EQ(tr.json(), expect);
}

TEST(Tracer, EscapesStrings)
{
    obs::Tracer tr;
    tr.begin("quote\"back\\slash\nnl", "c", 0.0, 0, 0);
    std::string j = tr.json();
    EXPECT_NE(j.find("quote\\\"back\\\\slash\\nnl"),
              std::string::npos);
}

TEST(Tracer, CapCountsDrops)
{
    obs::Tracer tr(2);
    tr.instant("a", "c", 0, 0, 0);
    tr.instant("b", "c", 1, 0, 0);
    tr.instant("c", "c", 2, 0, 0);
    EXPECT_EQ(tr.size(), 2u);
    EXPECT_EQ(tr.dropped(), 1u);
}

namespace
{

/** Divergent services for the attribution-invariant checks. */
const char *kDivergentServices[] = {"search-leaf", "hdsearch-leaf",
                                    "user"};

} // namespace

TEST(DivergenceProfiler, SumsMatchEngineTotals)
{
    // The exact-attribution invariant (profiler cells increment at the
    // same call sites as SimtStats): per-PC sums equal the engine's
    // aggregate counters, for each of the most divergent services.
    for (const char *name : kDivergentServices) {
        auto svc = svc::buildService(name);
        ASSERT_NE(svc, nullptr) << name;
        obs::DivergenceProfiler prof(svc->program());
        auto r = measureEfficiency(*svc, batch::Policy::PerApiArgSize,
                                   simt::ReconvPolicy::MinSpPc, 32,
                                   512, 42, &prof);
        EXPECT_EQ(prof.totalMaskedSlots(), r.stats.maskedSlots)
            << name;
        EXPECT_EQ(prof.totalDivergeEvents(), r.stats.divergeEvents)
            << name;
        EXPECT_EQ(prof.totalReconvMerges(), r.stats.reconvMerges)
            << name;
        // And under stack-IPDOM, where explicit merges happen.
        obs::DivergenceProfiler prof2(svc->program());
        auto r2 = measureEfficiency(*svc, batch::Policy::PerApiArgSize,
                                    simt::ReconvPolicy::StackIpdom, 32,
                                    512, 42, &prof2);
        EXPECT_EQ(prof2.totalMaskedSlots(), r2.stats.maskedSlots)
            << name;
        EXPECT_EQ(prof2.totalDivergeEvents(), r2.stats.divergeEvents)
            << name;
        EXPECT_EQ(prof2.totalReconvMerges(), r2.stats.reconvMerges)
            << name;
    }
}

TEST(DivergenceProfiler, TopRowsCarryFunctionNames)
{
    auto svc = svc::buildService("search-leaf");
    ASSERT_NE(svc, nullptr);
    obs::DivergenceProfiler prof(svc->program());
    measureEfficiency(*svc, batch::Policy::PerApiArgSize,
                      simt::ReconvPolicy::MinSpPc, 32, 512, 42, &prof);
    auto rows = prof.top(5);
    ASSERT_FALSE(rows.empty());
    for (const auto &row : rows) {
        EXPECT_NE(row.func, "?") << std::hex << row.pc;
        EXPECT_GT(row.maskedSlots, 0u);
    }
}

TEST(SimtStats, PlusEqualsAccumulates)
{
    simt::SimtStats a, b;
    a.batchOps = 10; a.scalarOps = 100; a.maskedSlots = 5;
    a.divergeEvents = 2; a.reconvMerges = 1; a.batches = 1;
    a.width = 32;
    b.batchOps = 20; b.scalarOps = 300; b.maskedSlots = 15;
    b.divergeEvents = 4; b.reconvMerges = 3; b.batches = 2;
    b.width = 32;
    a += b;
    EXPECT_EQ(a.batchOps, 30u);
    EXPECT_EQ(a.scalarOps, 400u);
    EXPECT_EQ(a.maskedSlots, 20u);
    EXPECT_EQ(a.divergeEvents, 6u);
    EXPECT_EQ(a.reconvMerges, 4u);
    EXPECT_EQ(a.batches, 3u);
    EXPECT_EQ(a.width, 32);
}

TEST(RunCells, MetricsDeterministicAcrossThreadCounts)
{
    std::vector<Cell> cells;
    TimingOptions opt;
    opt.requests = 96;
    for (const char *name : kDivergentServices)
        cells.push_back({name, core::makeRpuConfig(), opt});

    obs::Registry serial;
    {
        obs::Scope scope(&serial);
        runCells(cells, 1);
    }
    obs::Registry parallel4;
    {
        obs::Scope scope(&parallel4);
        runCells(cells, 4);
    }
    // Bit-identical exposition at any worker count: per-cell
    // registries merge into the parent in input order.
    EXPECT_EQ(serial.textPage(), parallel4.textPage());
    EXPECT_EQ(serial.jsonPage(), parallel4.jsonPage());
    EXPECT_GT(serial.counter("core.requests")->value(), 0u);
}

TEST(Uqsim, RegistryAndTierBreakdown)
{
    obs::Registry reg;
    sys::SysResult r;
    {
        obs::Scope scope(&reg);
        sys::SysConfig cfg;
        cfg.requests = 2000;
        cfg.rpu = true;
        r = sys::runUserScenario(cfg);
    }
    EXPECT_EQ(reg.counter("sys.requests")->value(), 2000u);
    EXPECT_GT(reg.counter("sys.batches")->value(), 0u);
    EXPECT_GT(reg.counter("sys.memc_misses")->value(), 0u);
    ASSERT_EQ(r.tiers.size(), 4u);
    EXPECT_EQ(r.tiers[0].name, "web");
    EXPECT_EQ(r.tiers[1].name, "user");
    EXPECT_EQ(r.tiers[2].name, "mcrouter");
    EXPECT_EQ(r.tiers[3].name, "memc");
    uint64_t batches = reg.counter("sys.batches")->value();
    for (const auto &tier : r.tiers) {
        EXPECT_EQ(tier.waitUs.count(), batches) << tier.name;
        EXPECT_GT(tier.serviceUs.mean(), 0.0) << tier.name;
    }
    EXPECT_GT(reg.gauge("sys.achieved_qps")->value(), 0.0);
}

#if SIMR_OBS_TRACE
TEST(Uqsim, EmitsBalancedTimeline)
{
    obs::Registry reg;
    obs::Tracer tr;
    {
        obs::Scope scope(&reg, &tr);
        sys::SysConfig cfg;
        cfg.requests = 500;
        cfg.rpu = true;
        sys::runUserScenario(cfg);
    }
    auto events = tr.events();
    ASSERT_FALSE(events.empty());
    // Every request must open and close exactly once.
    int asyncB = 0, asyncE = 0, tierSpans = 0;
    for (const auto &e : events) {
        if (e.ph == 'b')
            ++asyncB;
        else if (e.ph == 'e')
            ++asyncE;
        else if (e.ph == 'X' && e.cat == "sys") {
            ++tierSpans;
            EXPECT_GE(e.durUs, 0.0);
        }
    }
    EXPECT_EQ(asyncB, 500);
    EXPECT_EQ(asyncE, 500);
    EXPECT_GT(tierSpans, 0);
}

TEST(SpanRecorder, WindowsCoverEveryOp)
{
    // The issue-window spans partition the engine's op timeline: total
    // window duration == batchOps (1 op = 1us of virtual time).
    auto svc = svc::buildService("user");
    ASSERT_NE(svc, nullptr);
    obs::Tracer tr;
    obs::SpanRecorder rec(&tr, 1, 1);
    auto r = measureEfficiency(*svc, batch::Policy::PerApiArgSize,
                               simt::ReconvPolicy::MinSpPc, 32, 256,
                               42, &rec);
    double windowUs = 0;
    int batchesOpened = 0, batchesClosed = 0;
    for (const auto &e : tr.events()) {
        if (e.ph == 'X' && e.name == "window")
            windowUs += e.durUs;
        else if (e.ph == 'B')
            ++batchesOpened;
        else if (e.ph == 'E')
            ++batchesClosed;
    }
    EXPECT_DOUBLE_EQ(windowUs,
                     static_cast<double>(r.stats.batchOps));
    EXPECT_EQ(batchesOpened,
              static_cast<int>(r.stats.batches));
    EXPECT_EQ(batchesOpened, batchesClosed);
}

TEST(SpanRecorder, SinksDoNotPerturbExecution)
{
    // Attaching sinks must not change what executes: engine stats are
    // bit-identical with and without a tracer + profiler attached.
    auto svc = svc::buildService("search-leaf");
    ASSERT_NE(svc, nullptr);
    auto plain = measureEfficiency(*svc, batch::Policy::PerApiArgSize,
                                   simt::ReconvPolicy::MinSpPc, 32,
                                   256, 42);
    obs::Tracer tr;
    obs::DivergenceProfiler prof(svc->program());
    obs::SpanRecorder rec(&tr, 1, 1);
    obs::MultiObserver tee({&prof, &rec});
    auto traced = measureEfficiency(*svc, batch::Policy::PerApiArgSize,
                                    simt::ReconvPolicy::MinSpPc, 32,
                                    256, 42, &tee);
    EXPECT_EQ(plain.stats.batchOps, traced.stats.batchOps);
    EXPECT_EQ(plain.stats.scalarOps, traced.stats.scalarOps);
    EXPECT_EQ(plain.stats.maskedSlots, traced.stats.maskedSlots);
    EXPECT_EQ(plain.stats.divergeEvents, traced.stats.divergeEvents);
    EXPECT_EQ(plain.stats.reconvMerges, traced.stats.reconvMerges);
}
#endif
