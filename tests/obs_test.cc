/**
 * @file
 * Tests for the observability layer: metrics registry (counters,
 * gauges, sharded histograms, merge, exposition pages), thread-local
 * scoping, the Chrome trace-event tracer (golden-string format check),
 * the divergence profiler's exact-attribution invariant (including the
 * predicted-divergence split against static dataflow hints), the
 * deterministic per-cell scoping of simr::runCells, and the journey /
 * anatomy layer: latency-biased reservoir determinism, exact bucket
 * decomposition, critical paths, the per-batch chip recorder and the
 * trace flow events.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/cache.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "obs/anatomy.h"
#include "obs/divergence.h"
#include "obs/journey.h"
#include "obs/metrics.h"
#include "obs/spans.h"
#include "obs/trace.h"
#include "simr/runner.h"
#include "sys/uqsim.h"

using namespace simr;

TEST(Registry, CounterGaugeBasics)
{
    obs::Registry reg;
    obs::Counter *c = reg.counter("a.count");
    c->inc();
    c->inc(4);
    EXPECT_EQ(c->value(), 5u);
    // get-or-create returns the same handle.
    EXPECT_EQ(reg.counter("a.count"), c);

    obs::Gauge *g = reg.gauge("a.ratio");
    g->set(0.75);
    EXPECT_DOUBLE_EQ(g->value(), 0.75);
    g->set(0.5);
    EXPECT_DOUBLE_EQ(g->value(), 0.5);
}

TEST(Registry, TextPageStableAndSorted)
{
    obs::Registry reg;
    reg.counter("z.last")->inc(2);
    reg.counter("a.first")->inc(1);
    reg.gauge("m.mid")->set(1.5);
    reg.hist("h.lat")->add(10.0);
    std::string page = reg.textPage();
    EXPECT_NE(page.find("counter a.first 1\n"), std::string::npos);
    EXPECT_NE(page.find("counter z.last 2\n"), std::string::npos);
    EXPECT_NE(page.find("gauge m.mid 1.5\n"), std::string::npos);
    EXPECT_NE(page.find("hist h.lat count=1"), std::string::npos);
    // Sorted: a.first precedes z.last.
    EXPECT_LT(page.find("a.first"), page.find("z.last"));
    // Rendering twice is bit-identical.
    EXPECT_EQ(page, reg.textPage());
}

TEST(Registry, JsonPageParsesShape)
{
    obs::Registry reg;
    reg.counter("c")->inc(7);
    reg.gauge("g")->set(2.5);
    reg.hist("h")->add(1.0);
    std::string j = reg.jsonPage();
    EXPECT_NE(j.find("\"counters\""), std::string::npos);
    EXPECT_NE(j.find("\"c\": 7"), std::string::npos);
    EXPECT_NE(j.find("\"gauges\""), std::string::npos);
    EXPECT_NE(j.find("\"histograms\""), std::string::npos);
    EXPECT_NE(j.find("\"count\": 1"), std::string::npos);
}

TEST(Registry, MergeAddsCountersAndHists)
{
    obs::Registry a, b;
    a.counter("shared")->inc(3);
    b.counter("shared")->inc(4);
    b.counter("only_b")->inc(1);
    a.gauge("g")->set(1.0);
    b.gauge("g")->set(9.0);
    a.hist("h")->add(1.0);
    b.hist("h")->add(3.0);
    a.merge(b);
    EXPECT_EQ(a.counter("shared")->value(), 7u);
    EXPECT_EQ(a.counter("only_b")->value(), 1u);
    EXPECT_DOUBLE_EQ(a.gauge("g")->value(), 9.0);  // last writer wins
    Histogram h = a.hist("h")->snapshot();
    EXPECT_EQ(h.count(), 2u);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(ShardedHist, ExactUnderThreadPoolContention)
{
    // Hammer one registry from a pool; the merged aggregate must match
    // the serial reference exactly in count/mean/min/max, because the
    // shard merge is exact (order within a shard is preserved and
    // RunningStat::merge is the exact combine).
    obs::Registry reg;
    obs::ShardedHist *h = reg.hist("contended");
    obs::Counter *c = reg.counter("adds");
    constexpr int kThreads = 8;
    constexpr int kPerThread = 5000;

    parallelFor(kThreads, [&](size_t t) {
        Rng r(1000 + t);
        for (int i = 0; i < kPerThread; ++i) {
            h->add(r.uniform() * 100.0);
            c->inc();
        }
    }, kThreads);

    // Serial reference over the same per-thread streams.
    Histogram ref;
    for (size_t t = 0; t < kThreads; ++t) {
        Rng r(1000 + t);
        for (int i = 0; i < kPerThread; ++i)
            ref.add(r.uniform() * 100.0);
    }

    EXPECT_EQ(c->value(),
              static_cast<uint64_t>(kThreads) * kPerThread);
    Histogram got = h->snapshot();
    EXPECT_EQ(got.count(), ref.count());
    EXPECT_DOUBLE_EQ(got.min(), ref.min());
    EXPECT_DOUBLE_EQ(got.max(), ref.max());
    EXPECT_NEAR(got.mean(), ref.mean(), 1e-9);
    EXPECT_DOUBLE_EQ(got.percentile(0.5), ref.percentile(0.5));
}

TEST(Scope, NestsAndRestores)
{
    EXPECT_EQ(obs::Scope::registry(), &obs::Registry::global());
    obs::Registry outer, inner;
    {
        obs::Scope s1(&outer);
        EXPECT_EQ(obs::Scope::registry(), &outer);
        {
            obs::Scope s2(&inner);
            EXPECT_EQ(obs::Scope::registry(), &inner);
            obs::Scope::registry()->counter("x")->inc();
        }
        EXPECT_EQ(obs::Scope::registry(), &outer);
    }
    EXPECT_EQ(obs::Scope::registry(), &obs::Registry::global());
    EXPECT_EQ(inner.counter("x")->value(), 1u);
    EXPECT_EQ(outer.counter("x")->value(), 0u);
}

#if SIMR_OBS_TRACE
TEST(Scope, TracerVisibleOnlyInScope)
{
    EXPECT_EQ(obs::Scope::tracer(), nullptr);
    obs::Registry reg;
    obs::Tracer tr;
    {
        obs::Scope s(&reg, &tr);
        EXPECT_EQ(obs::Scope::tracer(), &tr);
    }
    EXPECT_EQ(obs::Scope::tracer(), nullptr);
}
#endif

TEST(Tracer, GoldenChromeJson)
{
    obs::Tracer tr;
    tr.processName(1, "chip");
    tr.complete("op", "cat", 1.0, 2.5, 1, 3, {{"n", obs::jnum(
        static_cast<uint64_t>(7))}});
    tr.instant("hit", "ev", 4.0, 1, 3);
    tr.asyncBegin("req", "r", 9, 0.5, 1);
    tr.asyncEnd("req", "r", 9, 6.0, 1);
    std::string expect =
        "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
        "{\"name\":\"process_name\",\"cat\":\"simr\",\"ph\":\"M\","
        "\"ts\":0.000,\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"chip\"}},\n"
        "{\"name\":\"op\",\"cat\":\"cat\",\"ph\":\"X\",\"ts\":1.000,"
        "\"dur\":2.500,\"pid\":1,\"tid\":3,\"args\":{\"n\":7}},\n"
        "{\"name\":\"hit\",\"cat\":\"ev\",\"ph\":\"i\",\"ts\":4.000,"
        "\"pid\":1,\"tid\":3},\n"
        "{\"name\":\"req\",\"cat\":\"r\",\"ph\":\"b\",\"ts\":0.500,"
        "\"pid\":1,\"tid\":0,\"id\":9},\n"
        "{\"name\":\"req\",\"cat\":\"r\",\"ph\":\"e\",\"ts\":6.000,"
        "\"pid\":1,\"tid\":0,\"id\":9}\n"
        "]}\n";
    EXPECT_EQ(tr.json(), expect);
}

TEST(Tracer, EscapesStrings)
{
    obs::Tracer tr;
    tr.begin("quote\"back\\slash\nnl", "c", 0.0, 0, 0);
    std::string j = tr.json();
    EXPECT_NE(j.find("quote\\\"back\\\\slash\\nnl"),
              std::string::npos);
}

TEST(Tracer, CapCountsDrops)
{
    obs::Tracer tr(2);
    tr.instant("a", "c", 0, 0, 0);
    tr.instant("b", "c", 1, 0, 0);
    tr.instant("c", "c", 2, 0, 0);
    EXPECT_EQ(tr.size(), 2u);
    EXPECT_EQ(tr.dropped(), 1u);
}

namespace
{

/** Divergent services for the attribution-invariant checks. */
const char *kDivergentServices[] = {"search-leaf", "hdsearch-leaf",
                                    "user"};

} // namespace

TEST(DivergenceProfiler, SumsMatchEngineTotals)
{
    // The exact-attribution invariant (profiler cells increment at the
    // same call sites as SimtStats): per-PC sums equal the engine's
    // aggregate counters, for each of the most divergent services.
    for (const char *name : kDivergentServices) {
        auto svc = svc::buildService(name);
        ASSERT_NE(svc, nullptr) << name;
        obs::DivergenceProfiler prof(svc->program());
        auto r = measureEfficiency(*svc, batch::Policy::PerApiArgSize,
                                   simt::ReconvPolicy::MinSpPc, 32,
                                   512, 42, &prof);
        EXPECT_EQ(prof.totalMaskedSlots(), r.stats.maskedSlots)
            << name;
        EXPECT_EQ(prof.totalDivergeEvents(), r.stats.divergeEvents)
            << name;
        EXPECT_EQ(prof.totalReconvMerges(), r.stats.reconvMerges)
            << name;
        // And under stack-IPDOM, where explicit merges happen.
        obs::DivergenceProfiler prof2(svc->program());
        auto r2 = measureEfficiency(*svc, batch::Policy::PerApiArgSize,
                                    simt::ReconvPolicy::StackIpdom, 32,
                                    512, 42, &prof2);
        EXPECT_EQ(prof2.totalMaskedSlots(), r2.stats.maskedSlots)
            << name;
        EXPECT_EQ(prof2.totalDivergeEvents(), r2.stats.divergeEvents)
            << name;
        EXPECT_EQ(prof2.totalReconvMerges(), r2.stats.reconvMerges)
            << name;
    }
}

TEST(DivergenceProfiler, TopRowsCarryFunctionNames)
{
    auto svc = svc::buildService("search-leaf");
    ASSERT_NE(svc, nullptr);
    obs::DivergenceProfiler prof(svc->program());
    measureEfficiency(*svc, batch::Policy::PerApiArgSize,
                      simt::ReconvPolicy::MinSpPc, 32, 512, 42, &prof);
    auto rows = prof.top(5);
    ASSERT_FALSE(rows.empty());
    for (const auto &row : rows) {
        EXPECT_NE(row.func, "?") << std::hex << row.pc;
        EXPECT_GT(row.maskedSlots, 0u);
    }
}

TEST(DivergenceProfiler, StaticHintsSplitPredictedDivergence)
{
    // The predicted-divergence columns after joining static dataflow
    // hints: divergence may only occur at branches classified
    // MayDiverge or UniformPerBatch (the latter when a size-bucketed
    // batch mixes argument lengths) -- never at a proven UniformAlways
    // branch, and never at an unhinted cell. The accessors must agree
    // with the per-row attribution.
    for (const char *name : kDivergentServices) {
        auto svc = svc::buildService(name);
        ASSERT_NE(svc, nullptr) << name;
        obs::DivergenceProfiler prof(svc->program());
        auto r = measureEfficiency(*svc, batch::Policy::PerApiArgSize,
                                   simt::ReconvPolicy::MinSpPc, 32,
                                   512, 42, &prof);
        ASSERT_GT(r.stats.divergeEvents, 0u) << name;

        // Before hints are installed, the split is inert.
        EXPECT_EQ(prof.predictedDivergeEvents(), 0u) << name;
        EXPECT_EQ(prof.alwaysUniformViolations(), 0u) << name;

        auto ca = analysis::gateAndProve(svc->program());
        ASSERT_NE(ca, nullptr) << name;
        ASSERT_TRUE(ca->report.dataflow.ran) << name;
        prof.setStaticHints(ca->report.dataflow);
        EXPECT_GT(prof.predictedDivergeEvents(), 0u) << name;
        EXPECT_LE(prof.predictedDivergeEvents(),
                  prof.totalDivergeEvents()) << name;
        EXPECT_EQ(prof.alwaysUniformViolations(), 0u) << name;

        // Per-row cross-check of the accessors.
        uint64_t may = 0, per_batch = 0, other = 0;
        for (const auto &row : prof.top(100000)) {
            if (row.staticHint == static_cast<int8_t>(
                    analysis::Uniformity::MayDiverge))
                may += row.divergeEvents;
            else if (row.staticHint == static_cast<int8_t>(
                         analysis::Uniformity::UniformPerBatch))
                per_batch += row.divergeEvents;
            else
                other += row.divergeEvents;
        }
        EXPECT_EQ(may, prof.predictedDivergeEvents()) << name;
        EXPECT_EQ(may + per_batch, prof.totalDivergeEvents()) << name;
        EXPECT_EQ(other, 0u) << name;
    }
}

TEST(SimtStats, PlusEqualsAccumulates)
{
    simt::SimtStats a, b;
    a.batchOps = 10; a.scalarOps = 100; a.maskedSlots = 5;
    a.divergeEvents = 2; a.reconvMerges = 1; a.batches = 1;
    a.width = 32;
    b.batchOps = 20; b.scalarOps = 300; b.maskedSlots = 15;
    b.divergeEvents = 4; b.reconvMerges = 3; b.batches = 2;
    b.width = 32;
    a += b;
    EXPECT_EQ(a.batchOps, 30u);
    EXPECT_EQ(a.scalarOps, 400u);
    EXPECT_EQ(a.maskedSlots, 20u);
    EXPECT_EQ(a.divergeEvents, 6u);
    EXPECT_EQ(a.reconvMerges, 4u);
    EXPECT_EQ(a.batches, 3u);
    EXPECT_EQ(a.width, 32);
}

TEST(RunCells, MetricsDeterministicAcrossThreadCounts)
{
    std::vector<Cell> cells;
    TimingOptions opt;
    opt.requests = 96;
    for (const char *name : kDivergentServices)
        cells.push_back({name, core::makeRpuConfig(), opt});

    obs::Registry serial;
    {
        obs::Scope scope(&serial);
        runCells(cells, 1);
    }
    obs::Registry parallel4;
    {
        obs::Scope scope(&parallel4);
        runCells(cells, 4);
    }
    // Bit-identical exposition at any worker count: per-cell
    // registries merge into the parent in input order.
    EXPECT_EQ(serial.textPage(), parallel4.textPage());
    EXPECT_EQ(serial.jsonPage(), parallel4.jsonPage());
    EXPECT_GT(serial.counter("core.requests")->value(), 0u);
}

TEST(Uqsim, RegistryAndTierBreakdown)
{
    obs::Registry reg;
    sys::SysResult r;
    {
        obs::Scope scope(&reg);
        sys::SysConfig cfg;
        cfg.requests = 2000;
        cfg.rpu = true;
        r = sys::runUserScenario(cfg);
    }
    EXPECT_EQ(reg.counter("sys.requests")->value(), 2000u);
    EXPECT_GT(reg.counter("sys.batches")->value(), 0u);
    EXPECT_GT(reg.counter("sys.memc_misses")->value(), 0u);
    ASSERT_EQ(r.tiers.size(), 4u);
    EXPECT_EQ(r.tiers[0].name, "web");
    EXPECT_EQ(r.tiers[1].name, "user");
    EXPECT_EQ(r.tiers[2].name, "mcrouter");
    EXPECT_EQ(r.tiers[3].name, "memc");
    uint64_t batches = reg.counter("sys.batches")->value();
    for (const auto &tier : r.tiers) {
        EXPECT_EQ(tier.waitUs.count(), batches) << tier.name;
        EXPECT_GT(tier.serviceUs.mean(), 0.0) << tier.name;
    }
    EXPECT_GT(reg.gauge("sys.achieved_qps")->value(), 0.0);
}

#if SIMR_OBS_TRACE
TEST(Uqsim, EmitsBalancedTimeline)
{
    obs::Registry reg;
    obs::Tracer tr;
    {
        obs::Scope scope(&reg, &tr);
        sys::SysConfig cfg;
        cfg.requests = 500;
        cfg.rpu = true;
        sys::runUserScenario(cfg);
    }
    auto events = tr.events();
    ASSERT_FALSE(events.empty());
    // Every request must open and close exactly once.
    int asyncB = 0, asyncE = 0, tierSpans = 0;
    for (const auto &e : events) {
        if (e.ph == 'b')
            ++asyncB;
        else if (e.ph == 'e')
            ++asyncE;
        else if (e.ph == 'X' && e.cat == "sys") {
            ++tierSpans;
            EXPECT_GE(e.durUs, 0.0);
        }
    }
    EXPECT_EQ(asyncB, 500);
    EXPECT_EQ(asyncE, 500);
    EXPECT_GT(tierSpans, 0);
}

TEST(SpanRecorder, WindowsCoverEveryOp)
{
    // The issue-window spans partition the engine's op timeline: total
    // window duration == batchOps (1 op = 1us of virtual time).
    auto svc = svc::buildService("user");
    ASSERT_NE(svc, nullptr);
    obs::Tracer tr;
    obs::SpanRecorder rec(&tr, 1, 1);
    auto r = measureEfficiency(*svc, batch::Policy::PerApiArgSize,
                               simt::ReconvPolicy::MinSpPc, 32, 256,
                               42, &rec);
    double windowUs = 0;
    int batchesOpened = 0, batchesClosed = 0;
    for (const auto &e : tr.events()) {
        if (e.ph == 'X' && e.name == "window")
            windowUs += e.durUs;
        else if (e.ph == 'B')
            ++batchesOpened;
        else if (e.ph == 'E')
            ++batchesClosed;
    }
    EXPECT_DOUBLE_EQ(windowUs,
                     static_cast<double>(r.stats.batchOps));
    EXPECT_EQ(batchesOpened,
              static_cast<int>(r.stats.batches));
    EXPECT_EQ(batchesOpened, batchesClosed);
}

namespace
{

/** Synthetic journey exercising every stage: a batched request that
 *  misses memcached, splits and visits storage. Times in us. */
obs::Journey
makeMissJourney(uint64_t req_id)
{
    obs::Journey j;
    j.reqId = req_id;
    j.batchId = 7;
    j.batchSize = 32;
    j.miss = true;
    j.orphan = true;
    auto ev = [&](double us, obs::JStage k, int tier = -1,
                  uint64_t aux = 0, bool foreign = false) {
        j.events.push_back({obs::journeyTicks(us), aux, k,
                            static_cast<int8_t>(tier), foreign});
    };
    ev(0.0, obs::JStage::Arrival);
    ev(80.5, obs::JStage::BatchFormed, -1, 7);
    double t = 80.5;
    for (int tier = 0; tier < 4; ++tier) {
        ev(t += 60.0, obs::JStage::TierEnqueue, tier);
        ev(t += 10.25, obs::JStage::TierStart, tier);
        ev(t += 100.0, obs::JStage::TierDone, tier);
    }
    ev(t, obs::JStage::CacheOutcome, -1, 1);
    ev(t, obs::JStage::SplitRetry);
    ev(t += 60.0, obs::JStage::TierEnqueue, 4);
    ev(t += 5.0, obs::JStage::TierStart, 4);
    ev(t += 1000.0, obs::JStage::TierDone, 4);
    ev(t += 120.0, obs::JStage::Completion);
    return j;
}

} // namespace

TEST(Anatomy, DecompositionIsExact)
{
    obs::Journey j = makeMissJourney(11);
    obs::RequestAnatomy a = obs::decompose(j);
    EXPECT_EQ(a.e2eTicks, j.e2eTicks());
    EXPECT_EQ(a.sumTicks(), a.e2eTicks);   // the telescoping identity
    EXPECT_TRUE(a.miss);
    EXPECT_TRUE(a.orphan);
    // 4 + 1 queue waits, 5 services, hops + reply in network.
    using obs::Bucket;
    EXPECT_EQ(a.ticks[static_cast<int>(Bucket::BatchWait)],
              obs::journeyTicks(80.5));
    EXPECT_EQ(a.ticks[static_cast<int>(Bucket::Queue)],
              4 * obs::journeyTicks(10.25) + obs::journeyTicks(5.0));
    EXPECT_EQ(a.ticks[static_cast<int>(Bucket::Service)],
              4 * obs::journeyTicks(100.0) + obs::journeyTicks(1000.0));
    EXPECT_EQ(a.ticks[static_cast<int>(Bucket::Divergence)], 0);
    EXPECT_EQ(a.ticks[static_cast<int>(Bucket::Memory)], 0);
}

TEST(Anatomy, ChipLinkMovesTicksButPreservesTheSum)
{
    obs::Journey j = makeMissJourney(3);
    obs::ChipLink link;
    link.tier = 1;
    link.divergenceFrac = 0.37;
    link.memoryFrac = 0.21;
    obs::RequestAnatomy plain = obs::decompose(j);
    obs::RequestAnatomy linked = obs::decompose(j, &link);
    using obs::Bucket;
    EXPECT_EQ(linked.sumTicks(), linked.e2eTicks);
    EXPECT_EQ(linked.e2eTicks, plain.e2eTicks);
    EXPECT_GT(linked.ticks[static_cast<int>(Bucket::Divergence)], 0);
    EXPECT_GT(linked.ticks[static_cast<int>(Bucket::Memory)], 0);
    // Only the linked tier's service ticks moved, nothing else.
    EXPECT_EQ(linked.ticks[static_cast<int>(Bucket::Service)] +
                  linked.ticks[static_cast<int>(Bucket::Divergence)] +
                  linked.ticks[static_cast<int>(Bucket::Memory)],
              plain.ticks[static_cast<int>(Bucket::Service)]);
    EXPECT_EQ(linked.ticks[static_cast<int>(Bucket::Queue)],
              plain.ticks[static_cast<int>(Bucket::Queue)]);
    EXPECT_EQ(linked.ticks[static_cast<int>(Bucket::BatchWait)],
              plain.ticks[static_cast<int>(Bucket::BatchWait)]);
}

TEST(Anatomy, CriticalPathIsContiguousAndCoversTheJourney)
{
    obs::Journey j = makeMissJourney(5);
    auto path = obs::criticalPath(j);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front().fromTick, j.arrivalTick());
    EXPECT_EQ(path.back().toTick, j.completionTick());
    int64_t sum = 0;
    for (size_t i = 0; i < path.size(); ++i) {
        EXPECT_GT(path[i].ticks(), 0) << "zero-length step " << i;
        if (i) {
            EXPECT_EQ(path[i].fromTick, path[i - 1].toTick) << i;
        }
        sum += path[i].ticks();
    }
    EXPECT_EQ(sum, j.e2eTicks());
}

TEST(Anatomy, BuildAnatomySeparatesMedianAndTail)
{
    // 100 journeys: 99 fast (two events, 100us) and one slow (2000us).
    std::vector<obs::Journey> js;
    for (uint64_t i = 0; i < 100; ++i) {
        obs::Journey j;
        j.reqId = i;
        double e2e = i == 42 ? 2000.0 : 100.0;
        j.events.push_back({0, 0, obs::JStage::Arrival, -1, false});
        j.events.push_back({obs::journeyTicks(e2e), 0,
                            obs::JStage::Completion, -1, false});
        js.push_back(std::move(j));
    }
    auto rep = obs::buildAnatomy(js);
    EXPECT_EQ(rep.all.count, 100u);
    EXPECT_EQ(rep.tail.count, 1u);          // the slowest 1%
    EXPECT_EQ(rep.slowestReqId, 42u);
    EXPECT_NEAR(rep.tail.meanE2eUs(), 2000.0, 1e-9);
    EXPECT_NEAR(rep.median.meanE2eUs(), 100.0, 1e-9);
    EXPECT_EQ(rep.requests.front().reqId, 42u);  // sorted e2e desc
    // Cohort sums obey the same exactness as the per-request rows.
    int64_t bucket_sum = 0;
    for (int b = 0; b < obs::kNumBuckets; ++b)
        bucket_sum += rep.all.ticks[b];
    EXPECT_EQ(bucket_sum, rep.all.e2eTicks);
}

TEST(JourneyRecorder, OffDeclinesAllCapturesEverything)
{
    obs::JourneyRecorder off(obs::JourneyMode::Off, 8);
    uint64_t key = 0;
    EXPECT_FALSE(off.offer(1, 100.0, &key));
    EXPECT_EQ(off.seen(), 0u);

    obs::JourneyRecorder all(obs::JourneyMode::All, 8);
    for (uint64_t i = 0; i < 100; ++i) {
        ASSERT_TRUE(all.offer(i, 10.0, &key));
        obs::Journey j;
        j.reqId = i;
        all.admit(std::move(j), key);
    }
    EXPECT_EQ(all.seen(), 100u);
    EXPECT_EQ(all.kept(), 100u);
    auto snap = all.snapshot();
    ASSERT_EQ(snap.size(), 100u);
    for (uint64_t i = 0; i < 100; ++i)
        EXPECT_EQ(snap[i].reqId, i);       // sorted by reqId
}

namespace
{

/** Offer/admit reqIds [0, n) with deterministic synthetic latencies
 *  (heavy tail for ids divisible by 64) from `threads` workers. */
void
offerStorm(obs::JourneyRecorder *rec, uint64_t n, int threads)
{
    parallelFor(static_cast<size_t>(threads), [&](size_t t) {
        for (uint64_t i = t; i < n; i += threads) {
            double e2e = i % 64 == 0 ? 10000.0 + i : 10.0 + i % 7;
            uint64_t key = 0;
            if (rec->offer(i, e2e, &key)) {
                obs::Journey j;
                j.reqId = i;
                j.events.push_back(
                    {0, 0, obs::JStage::Arrival, -1, false});
                j.events.push_back({obs::journeyTicks(e2e), 0,
                                    obs::JStage::Completion, -1,
                                    false});
                rec->admit(std::move(j), key);
            }
        }
    }, threads);
}

std::vector<uint64_t>
snapshotIds(const obs::JourneyRecorder &rec)
{
    std::vector<uint64_t> ids;
    for (const auto &j : rec.snapshot())
        ids.push_back(j.reqId);
    return ids;
}

} // namespace

TEST(JourneyRecorder, SampledSetIsThreadCountIndependent)
{
    // The sampling decision depends only on (reqId, latency, seed);
    // the snapshot is the global top-K of the shard union. The same
    // offered population must therefore yield the identical sampled
    // set at any thread count and any arrival interleaving.
    constexpr uint64_t kReqs = 8192;
    obs::JourneyRecorder serial(obs::JourneyMode::Sampled, 64);
    offerStorm(&serial, kReqs, 1);
    EXPECT_EQ(serial.seen(), kReqs);
    EXPECT_LE(serial.snapshot().size(), 64u);

    for (int threads : {2, 8}) {
        obs::JourneyRecorder par(obs::JourneyMode::Sampled, 64);
        offerStorm(&par, kReqs, threads);
        EXPECT_EQ(par.seen(), kReqs);
        EXPECT_EQ(snapshotIds(par), snapshotIds(serial)) << threads;
    }
}

TEST(JourneyRecorder, ReservoirIsLatencyBiased)
{
    // 1/64 of requests carry a ~1000x latency; with A-ES keys
    // (weight / Exp(1)) the sampled set must be dominated by them.
    constexpr uint64_t kReqs = 8192;
    obs::JourneyRecorder rec(obs::JourneyMode::Sampled, 64);
    offerStorm(&rec, kReqs, 1);
    auto snap = rec.snapshot();
    ASSERT_EQ(snap.size(), 64u);
    size_t heavy = 0;
    for (const auto &j : snap)
        heavy += j.reqId % 64 == 0;
    EXPECT_GE(heavy, snap.size() * 3 / 4)
        << "latency bias lost: only " << heavy << " tail journeys";
}

TEST(JourneyRecorder, ClearResetsEverything)
{
    obs::JourneyRecorder rec(obs::JourneyMode::Sampled, 4);
    offerStorm(&rec, 256, 1);
    EXPECT_GT(rec.seen(), 0u);
    EXPECT_GT(rec.kept(), 0u);
    rec.clear();
    EXPECT_EQ(rec.seen(), 0u);
    EXPECT_EQ(rec.kept(), 0u);
    EXPECT_TRUE(rec.snapshot().empty());
    // And it keeps working after the reset.
    offerStorm(&rec, 256, 1);
    EXPECT_EQ(rec.seen(), 256u);
    EXPECT_GT(rec.kept(), 0u);
}

TEST(BatchAnatomyRecorder, RowsMatchEngineTotals)
{
    auto svc = svc::buildService("user");
    ASSERT_NE(svc, nullptr);
    obs::BatchAnatomyRecorder bar;
    auto r = measureEfficiency(*svc, batch::Policy::PerApiArgSize,
                               simt::ReconvPolicy::MinSpPc, 32, 256,
                               42, &bar);
    const auto &rows = bar.rows();
    ASSERT_EQ(rows.size(), static_cast<size_t>(r.stats.batches));
    uint64_t ops = 0, scalar = 0, masked = 0, diverges = 0;
    for (const auto &row : rows) {
        ops += row.ops;
        scalar += row.scalarOps;
        masked += row.maskedSlots;
        diverges += row.divergeEvents;
        EXPECT_LE(row.memSlots, row.scalarOps);
        EXPECT_GE(row.endOp, row.startOp);
        // Every lane retires exactly once, inside the issue window.
        ASSERT_EQ(row.laneRetire.size(),
                  static_cast<size_t>(row.size));
        for (uint64_t at : row.laneRetire) {
            EXPECT_GE(at, row.startOp);
            EXPECT_LE(at, row.endOp);
        }
    }
    EXPECT_EQ(ops, r.stats.batchOps);
    EXPECT_EQ(scalar, r.stats.scalarOps);
    EXPECT_EQ(masked, r.stats.maskedSlots);
    EXPECT_EQ(diverges, r.stats.divergeEvents);

    obs::ChipLink link = bar.link(1);
    EXPECT_EQ(link.tier, 1);
    EXPECT_GE(link.divergenceFrac, 0.0);
    EXPECT_GE(link.memoryFrac, 0.0);
    EXPECT_LE(link.divergenceFrac + link.memoryFrac, 1.0);
    // The fractions are slot shares of the same issue budget.
    EXPECT_NEAR(link.divergenceFrac,
                static_cast<double>(masked) /
                    static_cast<double>(scalar + masked), 1e-12);
}

TEST(JourneyMetrics, PublishedIntoRegistry)
{
    obs::JourneyRecorder rec(obs::JourneyMode::Sampled, 16);
    offerStorm(&rec, 512, 1);
    auto rep = obs::buildAnatomy(rec.snapshot());
    obs::Registry reg;
    obs::recordJourneyMetrics(&reg, rec, rep);
    EXPECT_EQ(reg.counter("sys.journey.seen")->value(), 512u);
    EXPECT_EQ(reg.counter("sys.journey.sampled")->value(),
              rep.all.count);
    EXPECT_GT(reg.gauge("sys.journey.tail.e2e_us")->value(), 0.0);
    EXPECT_GT(reg.gauge("sys.journey.median.e2e_us")->value(), 0.0);
}

#if SIMR_OBS_TRACE
TEST(Tracer, FlowEventsCarryIdsAndPhases)
{
    obs::Tracer tr;
    tr.flowStart("batch link", "link", 9, 1.5, 2, 3);
    tr.flowStep("batch link", "link", 9, 2.5, 1, 1);
    tr.flowEnd("batch link", "link", 9, 3.5, 1, 1);
    auto events = tr.events();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].ph, 's');
    EXPECT_EQ(events[1].ph, 't');
    EXPECT_EQ(events[2].ph, 'f');
    std::string j = tr.json();
    EXPECT_NE(j.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(j.find("\"ph\":\"t\""), std::string::npos);
    EXPECT_NE(j.find("\"ph\":\"f\""), std::string::npos);
    EXPECT_NE(j.find("\"id\":9"), std::string::npos);
}
#endif

TEST(SpanRecorder, SinksDoNotPerturbExecution)
{
    // Attaching sinks must not change what executes: engine stats are
    // bit-identical with and without a tracer + profiler attached.
    auto svc = svc::buildService("search-leaf");
    ASSERT_NE(svc, nullptr);
    auto plain = measureEfficiency(*svc, batch::Policy::PerApiArgSize,
                                   simt::ReconvPolicy::MinSpPc, 32,
                                   256, 42);
    obs::Tracer tr;
    obs::DivergenceProfiler prof(svc->program());
    obs::SpanRecorder rec(&tr, 1, 1);
    obs::MultiObserver tee({&prof, &rec});
    auto traced = measureEfficiency(*svc, batch::Policy::PerApiArgSize,
                                    simt::ReconvPolicy::MinSpPc, 32,
                                    256, 42, &tee);
    EXPECT_EQ(plain.stats.batchOps, traced.stats.batchOps);
    EXPECT_EQ(plain.stats.scalarOps, traced.stats.scalarOps);
    EXPECT_EQ(plain.stats.maskedSlots, traced.stats.maskedSlots);
    EXPECT_EQ(plain.stats.divergeEvents, traced.stats.divergeEvents);
    EXPECT_EQ(plain.stats.reconvMerges, traced.stats.reconvMerges);
}
#endif
